package tenant

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestValidName(t *testing.T) {
	for _, name := range []string{"default", "acme", "a", "team-1", "a.b_c-9"} {
		if !ValidName(name) {
			t.Errorf("ValidName(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"", "Acme", "shard-00", "shard-x", "..", "a/b", "-lead", ".lead", "räksmörgås"} {
		if ValidName(name) {
			t.Errorf("ValidName(%q) = true, want false", name)
		}
	}
}

func TestRegistryDefaultIsOpenAndUnlimited(t *testing.T) {
	r := NewRegistry()
	d := r.Get(Default)
	if d == nil || !d.Open() || d.Weight() != 1 {
		t.Fatalf("default tenant = %+v", d)
	}
	if _, err := r.Authenticate(Default, ""); err != nil {
		t.Fatalf("open default refused an unauthenticated request: %v", err)
	}
	for i := 0; i < 100; i++ {
		if err := d.AcquireJob(); err != nil {
			t.Fatalf("unlimited default refused job %d: %v", i, err)
		}
	}
}

func TestRegistryAuthenticate(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(Config{Name: "acme", Token: "s3cret"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authenticate("nope", ""); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: err = %v", err)
	}
	if _, err := r.Authenticate("acme", ""); !errors.Is(err, ErrNoToken) {
		t.Fatalf("missing token: err = %v", err)
	}
	if _, err := r.Authenticate("acme", "wrong"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("wrong token: err = %v", err)
	}
	tn, err := r.Authenticate("acme", "s3cret")
	if err != nil || tn.Name() != "acme" {
		t.Fatalf("right token: tenant %v, err = %v", tn, err)
	}
}

func TestRegistryUpsertPreservesUsage(t *testing.T) {
	r := NewRegistry()
	tn, err := r.Register(Config{Name: "acme", Quotas: Quotas{MaxJobs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.AcquireJob(); err != nil {
		t.Fatal(err)
	}
	tn.AddNodes(500)
	tn2, err := r.Register(Config{Name: "acme", Token: "t", Weight: 3, Quotas: Quotas{MaxJobs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tn2 != tn {
		t.Fatal("upsert replaced the tenant object; usage counters lost")
	}
	jobs, nodes := tn.Usage()
	if jobs != 1 || nodes != 500 {
		t.Fatalf("usage after upsert = %d jobs / %d nodes, want 1/500", jobs, nodes)
	}
	if tn.Weight() != 3 || tn.Open() {
		t.Fatalf("upsert did not apply weight/token: weight=%d open=%v", tn.Weight(), tn.Open())
	}
	// MaxJobs shrank below usage: no new admissions until a release.
	if err := tn.AcquireJob(); err == nil {
		t.Fatal("admission above the shrunk quota succeeded")
	}
}

func TestQuotaEnforcement(t *testing.T) {
	r := NewRegistry()
	tn, err := r.Register(Config{Name: "acme", Quotas: Quotas{MaxJobs: 2, MaxNodes: 1000, MaxCheckpointBytes: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	// Jobs.
	if err := tn.AcquireJob(); err != nil {
		t.Fatal(err)
	}
	if err := tn.AcquireJob(); err != nil {
		t.Fatal(err)
	}
	err = tn.AcquireJob()
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "jobs" {
		t.Fatalf("third job: err = %v", err)
	}
	tn.ReleaseJob()
	if err := tn.AcquireJob(); err != nil {
		t.Fatalf("job after release: %v", err)
	}
	// Nodes.
	if err := tn.ReserveNodes(800); err != nil {
		t.Fatal(err)
	}
	if err := tn.ReserveNodes(300); !errors.As(err, &qe) || qe.Resource != "nodes" {
		t.Fatalf("over-quota nodes: err = %v", err)
	}
	if err := tn.ReserveNodes(200); err != nil {
		t.Fatalf("nodes exactly at quota: %v", err)
	}
	tn.ReleaseNodes(1000)
	if _, nodes := tn.Usage(); nodes != 0 {
		t.Fatalf("nodes after release = %d", nodes)
	}
	// Checkpoint bytes (admission check against store-provided usage).
	if err := tn.CheckBytes(4095); err != nil {
		t.Fatalf("bytes under quota: %v", err)
	}
	if err := tn.CheckBytes(4096); !errors.As(err, &qe) || qe.Resource != "checkpointBytes" {
		t.Fatalf("bytes at quota: err = %v", err)
	}
}

func TestLoadFile(t *testing.T) {
	t.Setenv("TENANT_TEST_TOKEN", "from-env")
	path := filepath.Join(t.TempDir(), "tenants.json")
	cfg := `{"tenants": [
		{"name": "acme", "tokenEnv": "TENANT_TEST_TOKEN", "weight": 2, "maxJobs": 4},
		{"name": "beta", "token": "inline", "maxNodes": 100000},
		{"name": "default", "maxCheckpointBytes": 1048576}
	]}`
	if err := os.WriteFile(path, []byte(cfg), 0o600); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authenticate("acme", "from-env"); err != nil {
		t.Fatalf("env token not applied: %v", err)
	}
	if got := r.Get("acme").Weight(); got != 2 {
		t.Fatalf("acme weight = %d", got)
	}
	if q := r.Get("beta").Quotas(); q.MaxNodes != 100000 {
		t.Fatalf("beta quotas = %+v", q)
	}
	if q := r.Get(Default).Quotas(); q.MaxCheckpointBytes != 1048576 {
		t.Fatalf("default quotas = %+v", q)
	}

	// A missing env var fails the whole load.
	bad := `{"tenants": [{"name": "x", "tokenEnv": "TENANT_TEST_UNSET_VAR"}]}`
	if err := os.WriteFile(path, []byte(bad), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry().LoadFile(path); err == nil {
		t.Fatal("unset tokenEnv did not fail the load")
	}
	// So does an unknown field (typo protection) and a duplicate name.
	for _, bad := range []string{
		`{"tenants": [{"name": "x", "tokens": "typo"}]}`,
		`{"tenants": [{"name": "x"}, {"name": "x"}]}`,
		`{"tenants": [{"name": "Shard-00"}]}`,
		`{"tenants": [{"name": "x", "token": "a", "tokenEnv": "TENANT_TEST_TOKEN"}]}`,
	} {
		if err := os.WriteFile(path, []byte(bad), 0o600); err != nil {
			t.Fatal(err)
		}
		if err := NewRegistry().LoadFile(path); err == nil {
			t.Fatalf("config %s loaded without error", bad)
		}
	}
}
