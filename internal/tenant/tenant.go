// Package tenant is the multi-tenancy subsystem behind cmd/serve: a
// registry of named tenants with bearer-token authentication, per-tenant
// quotas (concurrent jobs, total graph nodes, checkpoint bytes on disk),
// and a weighted-fair scheduler that bounds how many run slots any one
// tenant can hold while round-robining queued work across tenants.
//
// The package is deliberately mechanism-only: it counts, checks and
// schedules, but performs no IO of its own beyond reading a config file.
// The serve layer decides where enforcement points live (admission versus
// steady state) and what usage numbers to feed in.
package tenant

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"regexp"
	"sort"
	"sync"
)

// Default is the built-in tenant every un-namespaced request maps to. It
// always exists, starts open (no token) and unlimited, and may be given a
// token and quotas like any other tenant.
const Default = "default"

// nameRE constrains tenant names to path-safe slugs: they become directory
// names under the serve data dir and path segments in the HTTP API.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// ValidName reports whether a tenant name is acceptable: a short lowercase
// slug that cannot escape the data dir or collide with the store's own
// "shard-NN" directories.
func ValidName(name string) bool {
	if !nameRE.MatchString(name) {
		return false
	}
	// Reserved: shard directories live alongside job files inside a tenant
	// root, and migration moves root-level "shard-*" dirs into default/.
	if len(name) >= 6 && name[:6] == "shard-" {
		return false
	}
	return name != "." && name != ".."
}

// Authentication errors, mapped by the serve layer to 404/401/403.
var (
	ErrUnknownTenant = errors.New("unknown tenant")
	ErrNoToken       = errors.New("authentication required")
	ErrBadToken      = errors.New("token not valid for tenant")
)

// Quotas are per-tenant admission limits. Zero means unlimited.
type Quotas struct {
	// MaxJobs bounds concurrently active runs (running or queued for a run
	// slot). Terminal jobs do not count.
	MaxJobs int `json:"maxJobs,omitempty"`
	// MaxNodes bounds the total graph nodes (|V1|+|V2| summed over live
	// jobs) a tenant may keep resident. Released when a job is deleted.
	MaxNodes int64 `json:"maxNodes,omitempty"`
	// MaxCheckpointBytes bounds the tenant's durable footprint — graphs,
	// checkpoint chains and metas under its data-dir root. Checked at job
	// admission against the store's accounting; a job already admitted is
	// never refused a checkpoint (durability beats quotas mid-run).
	MaxCheckpointBytes int64 `json:"maxCheckpointBytes,omitempty"`
}

// Config declares or updates one tenant.
type Config struct {
	Name string `json:"name"`
	// Token is the bearer token for the tenant's API namespace. Empty
	// means open: requests need no Authorization header.
	Token string `json:"token,omitempty"`
	// TokenEnv names an environment variable to read the token from at
	// load time, keeping secrets out of the config file. Mutually
	// exclusive with Token.
	TokenEnv string `json:"tokenEnv,omitempty"`
	// Weight is the tenant's fair-share weight (default 1). A tenant with
	// weight 2 is entitled to twice the run slots of a weight-1 tenant
	// when both have queued work.
	Weight int `json:"weight,omitempty"`
	Quotas
}

// QuotaError is an admission refusal; the serve layer renders it as 429.
type QuotaError struct {
	Tenant   string
	Resource string // "jobs" | "nodes" | "checkpointBytes"
	Used     int64
	Limit    int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %s over %s quota (%d of %d in use)", e.Tenant, e.Resource, e.Used, e.Limit)
}

// Tenant is one registered tenant: identity, auth, quotas, and live usage
// counters. All fields are guarded by mu; the name is immutable.
type Tenant struct {
	name string

	mu     sync.Mutex
	token  string
	weight int
	quotas Quotas

	activeJobs int   // runs admitted and not yet finished
	nodes      int64 // graph nodes held by live jobs
}

// Name returns the tenant's immutable name.
func (t *Tenant) Name() string { return t.name }

// Weight returns the tenant's fair-share weight (always >= 1).
func (t *Tenant) Weight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.weight
}

// Quotas returns the tenant's current limits.
func (t *Tenant) Quotas() Quotas {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.quotas
}

// Open reports whether the tenant accepts unauthenticated requests.
func (t *Tenant) Open() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.token == ""
}

// Usage returns the tenant's live counters: active runs and resident nodes.
func (t *Tenant) Usage() (activeJobs int, nodes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.activeJobs, t.nodes
}

// AcquireJob admits one run against MaxJobs, or returns a *QuotaError.
// Every successful call must be paired with ReleaseJob when the run ends.
func (t *Tenant) AcquireJob() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if max := t.quotas.MaxJobs; max > 0 && t.activeJobs >= max {
		return &QuotaError{Tenant: t.name, Resource: "jobs", Used: int64(t.activeJobs), Limit: int64(max)}
	}
	t.activeJobs++
	return nil
}

// ReleaseJob returns a run slot admitted by AcquireJob.
func (t *Tenant) ReleaseJob() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.activeJobs > 0 {
		t.activeJobs--
	}
}

// ReserveNodes admits n graph nodes against MaxNodes, or returns a
// *QuotaError. Paired with ReleaseNodes when the job is deleted.
func (t *Tenant) ReserveNodes(n int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if max := t.quotas.MaxNodes; max > 0 && t.nodes+n > max {
		return &QuotaError{Tenant: t.name, Resource: "nodes", Used: t.nodes, Limit: max}
	}
	t.nodes += n
	return nil
}

// AddNodes records n nodes without a quota check — used at boot when jobs
// already on disk are restored: data that exists is accounted, not refused.
func (t *Tenant) AddNodes(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes += n
}

// ReleaseNodes returns nodes reserved by ReserveNodes or AddNodes.
func (t *Tenant) ReleaseNodes(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nodes -= n; t.nodes < 0 {
		t.nodes = 0
	}
}

// CheckBytes verifies the tenant's durable footprint (as accounted by the
// store) is under MaxCheckpointBytes, or returns a *QuotaError. Admission
// check only: used counts bytes already on disk, so a tenant at its limit
// cannot admit new jobs until it deletes old ones.
func (t *Tenant) CheckBytes(used int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if max := t.quotas.MaxCheckpointBytes; max > 0 && used >= max {
		return &QuotaError{Tenant: t.name, Resource: "checkpointBytes", Used: used, Limit: max}
	}
	return nil
}

// Registry is the tenant table. It always contains the Default tenant.
type Registry struct {
	mu      sync.Mutex
	tenants map[string]*Tenant
}

// NewRegistry builds a registry holding only the open, unlimited Default
// tenant — the configuration every pre-tenancy deployment ran with.
func NewRegistry() *Registry {
	r := &Registry{tenants: make(map[string]*Tenant)}
	r.tenants[Default] = &Tenant{name: Default, weight: 1}
	return r
}

// Register upserts a tenant from its config. Registering an existing name
// (including Default) updates its token, weight and quotas in place,
// preserving live usage counters.
func (r *Registry) Register(c Config) (*Tenant, error) {
	if !ValidName(c.Name) {
		return nil, fmt.Errorf("tenant: invalid name %q (want a lowercase slug, not starting with shard-)", c.Name)
	}
	token := c.Token
	if c.TokenEnv != "" {
		if token != "" {
			return nil, fmt.Errorf("tenant %s: token and tokenEnv are mutually exclusive", c.Name)
		}
		token = os.Getenv(c.TokenEnv)
		if token == "" {
			return nil, fmt.Errorf("tenant %s: environment variable %s is empty or unset", c.Name, c.TokenEnv)
		}
	}
	weight := c.Weight
	if weight < 0 {
		return nil, fmt.Errorf("tenant %s: negative weight %d", c.Name, weight)
	}
	if weight == 0 {
		weight = 1
	}
	if c.MaxJobs < 0 || c.MaxNodes < 0 || c.MaxCheckpointBytes < 0 {
		return nil, fmt.Errorf("tenant %s: negative quota", c.Name)
	}
	r.mu.Lock()
	t := r.tenants[c.Name]
	if t == nil {
		// Publish fully initialized: a concurrent Authenticate must never
		// observe a token-protected tenant in a half-built open state.
		t = &Tenant{name: c.Name, token: token, weight: weight, quotas: c.Quotas}
		r.tenants[c.Name] = t
		r.mu.Unlock()
		return t, nil
	}
	r.mu.Unlock()
	t.mu.Lock()
	t.token = token
	t.weight = weight
	t.quotas = c.Quotas
	t.mu.Unlock()
	return t, nil
}

// Get returns the named tenant, or nil.
func (r *Registry) Get(name string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[name]
}

// All returns every tenant sorted by name.
func (r *Registry) All() []*Tenant {
	r.mu.Lock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

// Authenticate resolves a tenant name plus a bearer token to the tenant.
// An open tenant (no token configured) accepts any request; a protected
// one requires its exact token — ErrNoToken when the request carries none
// (401), ErrBadToken on a mismatch (403), ErrUnknownTenant when the name
// does not resolve (404).
func (r *Registry) Authenticate(name, bearer string) (*Tenant, error) {
	t := r.Get(name)
	if t == nil {
		return nil, ErrUnknownTenant
	}
	t.mu.Lock()
	token := t.token
	t.mu.Unlock()
	if token == "" {
		return t, nil
	}
	if bearer == "" {
		return nil, ErrNoToken
	}
	if subtle.ConstantTimeCompare([]byte(token), []byte(bearer)) != 1 {
		return nil, ErrBadToken
	}
	return t, nil
}

// configFile is the -tenants file shape: {"tenants": [Config, ...]}.
type configFile struct {
	Tenants []Config `json:"tenants"`
}

// LoadFile registers every tenant declared in a JSON config file,
// resolving tokenEnv references against the current environment. The file
// may (re)configure the Default tenant; any error aborts the whole load so
// a half-applied tenant set never serves traffic.
func (r *Registry) LoadFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	var f configFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("tenant: parsing %s: %w", path, err)
	}
	seen := make(map[string]bool, len(f.Tenants))
	for _, c := range f.Tenants {
		if seen[c.Name] {
			return fmt.Errorf("tenant: %s declared twice in %s", c.Name, path)
		}
		seen[c.Name] = true
		if _, err := r.Register(c); err != nil {
			return fmt.Errorf("tenant: %s: %w", path, err)
		}
	}
	return nil
}
