package tenant

import (
	"context"
	"sync"
)

// Scheduler allocates a fixed pool of run slots across tenants so that no
// tenant can monopolize the service's run goroutines. Two mechanisms
// compose:
//
//   - a weighted share bound: while several tenants have demand (slots held
//     or work queued), tenant t may hold at most
//     max(1, capacity * weight(t) / totalActiveWeight) slots. A tenant
//     alone on the scheduler gets the whole pool; the moment a second
//     tenant shows demand the shares contract, so the first new release
//     already goes to the newcomer — that is the bounded-wait guarantee
//     the fairness suite pins.
//
//   - round-robin granting: freed slots are offered to queueing tenants in
//     rotation, not FIFO over the global queue, so a tenant that enqueued
//     100 runs ahead of a small tenant's single run does not starve it.
//
// Within one tenant, waiters are served strictly FIFO. Capacity <= 0 means
// unlimited: Acquire never blocks and only the per-tenant usage counters
// are maintained.
type Scheduler struct {
	reg      *Registry
	capacity int

	mu       sync.Mutex
	total    int            // slots currently held
	inflight map[string]int // slots held per tenant
	queues   map[string][]*waiter
	ring     []string // tenants with queued waiters, in arrival order
	next     int      // ring index the next grant scan starts at
}

// waiter is one queued Acquire. granted and abandoned are guarded by the
// scheduler mutex and resolve the race between a grant and a context
// cancellation: whichever is recorded first wins.
type waiter struct {
	ch        chan struct{}
	granted   bool
	abandoned bool
}

// NewScheduler builds a scheduler over the registry's weights. capacity is
// the total number of concurrent run slots; <= 0 means unlimited.
func NewScheduler(capacity int, reg *Registry) *Scheduler {
	return &Scheduler{
		reg:      reg,
		capacity: capacity,
		inflight: make(map[string]int),
		queues:   make(map[string][]*waiter),
	}
}

// Capacity returns the configured slot count (<= 0: unlimited).
func (s *Scheduler) Capacity() int { return s.capacity }

// InFlight returns the slots a tenant currently holds.
func (s *Scheduler) InFlight(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight[name]
}

// Queued returns the number of runs a tenant has waiting for a slot.
func (s *Scheduler) Queued(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, w := range s.queues[name] {
		if !w.abandoned {
			n++
		}
	}
	return n
}

// weight returns a tenant's fair-share weight, defaulting to 1 for names
// the registry does not know (jobs restored for since-unregistered dirs).
func (s *Scheduler) weight(name string) int {
	if t := s.reg.Get(name); t != nil {
		return t.Weight()
	}
	return 1
}

// share computes tenant name's slot bound under current demand. Caller
// holds s.mu.
func (s *Scheduler) share(name string) int {
	total := 0
	counted := map[string]bool{}
	for t, n := range s.inflight {
		if n > 0 && !counted[t] {
			counted[t] = true
			total += s.weight(t)
		}
	}
	for t, q := range s.queues {
		if len(q) > 0 && !counted[t] {
			counted[t] = true
			total += s.weight(t)
		}
	}
	if !counted[name] {
		total += s.weight(name)
	}
	if total <= 0 {
		return s.capacity
	}
	sh := s.capacity * s.weight(name) / total
	if sh < 1 {
		sh = 1
	}
	return sh
}

// Acquire blocks until the tenant is granted a run slot or ctx is done.
// On success it returns the release function that must be called exactly
// once when the run finishes.
func (s *Scheduler) Acquire(ctx context.Context, name string) (release func(), err error) {
	s.mu.Lock()
	if s.capacity <= 0 {
		s.inflight[name]++
		s.mu.Unlock()
		return func() { s.release(name) }, nil
	}
	// Grant inline only when no one is queued anywhere — a free slot with
	// waiters pending always goes through the round-robin pump, so a late
	// arrival cannot jump tenants that were already waiting.
	if s.total < s.capacity && len(s.ring) == 0 && s.inflight[name] < s.share(name) {
		s.total++
		s.inflight[name]++
		s.mu.Unlock()
		return func() { s.release(name) }, nil
	}
	w := &waiter{ch: make(chan struct{})}
	if len(s.queues[name]) == 0 {
		s.ring = append(s.ring, name)
	}
	s.queues[name] = append(s.queues[name], w)
	s.pump()
	s.mu.Unlock()

	select {
	case <-w.ch:
		return func() { s.release(name) }, nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// The grant raced the cancellation and won; hand the slot back.
			s.total--
			s.inflight[name]--
			s.pump()
			s.mu.Unlock()
			return nil, ctx.Err()
		}
		w.abandoned = true
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns a slot and re-runs the grant pump.
func (s *Scheduler) release(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[name] > 0 {
		s.inflight[name]--
	}
	if s.capacity <= 0 {
		return
	}
	if s.total > 0 {
		s.total--
	}
	s.pump()
}

// pump hands out free slots: scan the ring starting after the last grant,
// skip tenants at their share bound, grant the head waiter of the first
// eligible tenant, repeat until no slot or no eligible waiter remains.
// Caller holds s.mu.
func (s *Scheduler) pump() {
	for s.total < s.capacity {
		s.shed()
		if len(s.ring) == 0 {
			return
		}
		granted := false
		n := len(s.ring)
		for scanned := 0; scanned < n; scanned++ {
			idx := (s.next + scanned) % n
			name := s.ring[idx]
			if s.inflight[name] >= s.share(name) {
				continue
			}
			w := s.queues[name][0]
			s.queues[name] = s.queues[name][1:]
			w.granted = true
			s.total++
			s.inflight[name]++
			close(w.ch)
			s.next = (idx + 1) % n
			granted = true
			break
		}
		if !granted {
			return
		}
	}
}

// shed drops abandoned waiters from queue heads and removes tenants with
// nothing queued from the ring, rotating it so the scan position is
// preserved (the tenant after the last grant scans first). Caller holds
// s.mu.
func (s *Scheduler) shed() {
	if len(s.ring) == 0 {
		return
	}
	if s.next >= len(s.ring) {
		s.next = 0
	}
	rotated := append(append([]string(nil), s.ring[s.next:]...), s.ring[:s.next]...)
	kept := rotated[:0]
	for _, name := range rotated {
		q := s.queues[name]
		for len(q) > 0 && q[0].abandoned {
			q = q[1:]
		}
		if len(q) == 0 {
			delete(s.queues, name)
			continue
		}
		s.queues[name] = q
		kept = append(kept, name)
	}
	s.ring = kept
	s.next = 0
}
