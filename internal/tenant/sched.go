package tenant

import (
	"context"
	"sync"
	"time"
)

// Scheduler allocates a fixed pool of run slots across tenants so that no
// tenant can monopolize the service's run goroutines. Two mechanisms
// compose:
//
//   - a weighted share bound: while several tenants have demand (slots held
//     or work queued), tenant t may hold at most
//     max(1, capacity * weight(t) / totalActiveWeight) slots. A tenant
//     alone on the scheduler gets the whole pool; the moment a second
//     tenant shows demand the shares contract, so the first new release
//     already goes to the newcomer — that is the bounded-wait guarantee
//     the fairness suite pins.
//
//   - round-robin granting: freed slots are offered to queueing tenants in
//     rotation, not FIFO over the global queue, so a tenant that enqueued
//     100 runs ahead of a small tenant's single run does not starve it.
//
// Within one tenant, waiters are served strictly FIFO. Capacity <= 0 means
// unlimited: Acquire never blocks and only the per-tenant usage counters
// are maintained.
//
// Invariant (guarded by mu, asserted by the race-stress suite): a tenant
// name appears in the ring exactly once, and exactly when its queue is
// non-empty. A cancelled Acquire dequeues its waiter immediately, so
// abandoned waiters never linger to distort share() demand or round-robin
// order — a previous revision left them queued until a later grant pass
// swept them, which also let a tenant whose queue drained while the pool
// was full be re-appended to the ring twice, doubling its scan weight.
type Scheduler struct {
	reg      *Registry
	capacity int

	mu       sync.Mutex
	total    int            // slots currently held
	inflight map[string]int // slots held per tenant
	queues   map[string][]*waiter
	ring     []string // tenants with queued waiters, in arrival order
	next     int      // ring index the next grant scan starts at
	onWait   func(tenant string, seconds float64)
}

// waiter is one queued Acquire. granted is guarded by the scheduler mutex
// and resolves the race between a grant and a context cancellation:
// whichever is recorded first wins — a grant that loses is handed back by
// the cancelling goroutine, a cancellation that loses returns the slot.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// NewScheduler builds a scheduler over the registry's weights. capacity is
// the total number of concurrent run slots; <= 0 means unlimited.
func NewScheduler(capacity int, reg *Registry) *Scheduler {
	return &Scheduler{
		reg:      reg,
		capacity: capacity,
		inflight: make(map[string]int),
		queues:   make(map[string][]*waiter),
	}
}

// Capacity returns the configured slot count (<= 0: unlimited).
func (s *Scheduler) Capacity() int { return s.capacity }

// InFlight returns the slots a tenant currently holds.
func (s *Scheduler) InFlight(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight[name]
}

// Queued returns the number of runs a tenant has waiting for a slot.
func (s *Scheduler) Queued(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[name])
}

// SetWaitObserver installs fn, called once per successful Acquire with the
// tenant's name and how long the caller waited for its slot (zero for
// grants that never queued). The observer runs outside the scheduler mutex
// on the acquiring goroutine; cmd/serve feeds a latency histogram from it.
// Install before serving traffic; a nil fn disables observation.
func (s *Scheduler) SetWaitObserver(fn func(tenant string, seconds float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onWait = fn
}

// observeWait reports one successful acquisition to the observer, if any.
func (s *Scheduler) observeWait(name string, seconds float64) {
	s.mu.Lock()
	fn := s.onWait
	s.mu.Unlock()
	if fn != nil {
		fn(name, seconds)
	}
}

// weight returns a tenant's fair-share weight, defaulting to 1 for names
// the registry does not know (jobs restored for since-unregistered dirs).
func (s *Scheduler) weight(name string) int {
	if t := s.reg.Get(name); t != nil {
		return t.Weight()
	}
	return 1
}

// share computes tenant name's slot bound under current demand. Caller
// holds s.mu.
func (s *Scheduler) share(name string) int {
	total := 0
	counted := map[string]bool{}
	for t, n := range s.inflight {
		if n > 0 && !counted[t] {
			counted[t] = true
			total += s.weight(t)
		}
	}
	for t, q := range s.queues {
		if len(q) > 0 && !counted[t] {
			counted[t] = true
			total += s.weight(t)
		}
	}
	if !counted[name] {
		total += s.weight(name)
	}
	if total <= 0 {
		return s.capacity
	}
	sh := s.capacity * s.weight(name) / total
	if sh < 1 {
		sh = 1
	}
	return sh
}

// Acquire blocks until the tenant is granted a run slot or ctx is done.
// On success it returns the release function that must be called exactly
// once when the run finishes.
func (s *Scheduler) Acquire(ctx context.Context, name string) (release func(), err error) {
	return s.AcquireTraced(ctx, name, nil)
}

// AcquireTraced is Acquire with a per-call wait observer: obs, if non-nil,
// receives how long this acquisition waited for its slot, in nanoseconds
// (zero for grants that never queued), on the acquiring goroutine just
// before Acquire returns. The global SetWaitObserver hook fires as well —
// cmd/serve feeds the tenant-wide latency histogram from that and the
// job's slot-wait trace span from this.
func (s *Scheduler) AcquireTraced(ctx context.Context, name string, obs func(waitNanos int64)) (release func(), err error) {
	observe := func(wait time.Duration) {
		s.observeWait(name, wait.Seconds())
		if obs != nil {
			obs(wait.Nanoseconds())
		}
	}
	s.mu.Lock()
	if s.capacity <= 0 {
		s.inflight[name]++
		s.mu.Unlock()
		observe(0)
		return func() { s.release(name) }, nil
	}
	// Grant inline only when no one is queued anywhere — a free slot with
	// waiters pending always goes through the round-robin pump, so a late
	// arrival cannot jump tenants that were already waiting.
	if s.total < s.capacity && len(s.ring) == 0 && s.inflight[name] < s.share(name) {
		s.total++
		s.inflight[name]++
		s.mu.Unlock()
		observe(0)
		return func() { s.release(name) }, nil
	}
	w := &waiter{ch: make(chan struct{})}
	if len(s.queues[name]) == 0 {
		s.ring = append(s.ring, name)
	}
	s.queues[name] = append(s.queues[name], w)
	s.pump()
	s.mu.Unlock()
	start := time.Now()

	select {
	case <-w.ch:
		observe(time.Since(start))
		return func() { s.release(name) }, nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// The grant raced the cancellation and won; hand the slot back.
			s.total--
			s.inflight[name]--
			s.pump()
			s.mu.Unlock()
			return nil, ctx.Err()
		}
		// Not granted: the waiter is still queued — dequeue it now, so it
		// cannot absorb a later grant (a slot granted to a goroutine that
		// already returned would never be released) and stops counting as
		// demand in share().
		s.unqueue(name, w)
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

// unqueue removes one waiter from a tenant's queue, dropping the tenant
// from the ring when its queue empties. Caller holds s.mu.
func (s *Scheduler) unqueue(name string, w *waiter) {
	q := s.queues[name]
	for i, cand := range q {
		if cand == w {
			s.queues[name] = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(s.queues[name]) == 0 {
		s.dropFromRing(name)
	}
}

// dropFromRing removes a tenant from the ring, keeping the scan position on
// the element that follows the removed one. Caller holds s.mu.
func (s *Scheduler) dropFromRing(name string) {
	delete(s.queues, name)
	for i, cand := range s.ring {
		if cand != name {
			continue
		}
		s.ring = append(s.ring[:i], s.ring[i+1:]...)
		if s.next > i {
			s.next--
		}
		if s.next >= len(s.ring) {
			s.next = 0
		}
		return
	}
}

// Acquire and release keep the counters; release returns a slot and
// re-runs the grant pump.
func (s *Scheduler) release(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[name] > 0 {
		s.inflight[name]--
	}
	if s.capacity <= 0 {
		return
	}
	if s.total > 0 {
		s.total--
	}
	s.pump()
}

// pump hands out free slots: scan the ring starting after the last grant,
// skip tenants at their share bound, grant the head waiter of the first
// eligible tenant, repeat until no slot or no eligible waiter remains.
// Caller holds s.mu.
func (s *Scheduler) pump() {
	for s.total < s.capacity && len(s.ring) > 0 {
		granted := false
		n := len(s.ring)
		if s.next >= n {
			s.next = 0
		}
		for scanned := 0; scanned < n; scanned++ {
			idx := (s.next + scanned) % n
			name := s.ring[idx]
			if s.inflight[name] >= s.share(name) {
				continue
			}
			w := s.queues[name][0]
			s.queues[name] = s.queues[name][1:]
			w.granted = true
			s.total++
			s.inflight[name]++
			close(w.ch)
			if len(s.queues[name]) == 0 {
				// Keep the ring exact: a stale empty-queue entry would let
				// the tenant's next Acquire append a duplicate.
				s.next = idx
				s.dropFromRing(name)
			} else {
				s.next = (idx + 1) % n
			}
			granted = true
			break
		}
		if !granted {
			return
		}
	}
}
