package bitset

import (
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("fresh set Count = %d", s.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set on fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Reset()
	if got := s.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d", got)
	}
	if s.Len() != 130 {
		t.Fatalf("Len changed after Reset: %d", s.Len())
	}
}

func TestSetIdempotent(t *testing.T) {
	s := New(10)
	s.Set(3)
	s.Set(3)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d after double Set", got)
	}
	s.Clear(5) // clearing an unset bit is a no-op
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d after Clear of unset bit", got)
	}
}

func TestPanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	s := New(8)
	check("Set(-1)", func() { s.Set(-1) })
	check("Set(8)", func() { s.Set(8) })
	check("Test(8)", func() { s.Test(8) })
	check("Clear(-1)", func() { s.Clear(-1) })
	check("New(-1)", func() { New(-1) })
}

func TestZeroCapacity(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.Count() != 0 {
		t.Fatalf("New(0): Len=%d Count=%d", s.Len(), s.Count())
	}
}

func TestCountMatchesReference(t *testing.T) {
	// Property: Count equals the number of distinct indices ever Set and not
	// subsequently Cleared, for arbitrary operation sequences.
	type op struct {
		Idx uint16
		Set bool
	}
	err := quick.Check(func(ops []op) bool {
		const n = 256
		s := New(n)
		ref := map[int]bool{}
		for _, o := range ops {
			i := int(o.Idx) % n
			if o.Set {
				s.Set(i)
				ref[i] = true
			} else {
				s.Clear(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Test(i) != ref[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
