// Package bitset implements a dense bitset over node indices.
//
// The matcher and the graph traversals mark millions of nodes per pass;
// a []uint64-backed bitset keeps that at one bit per node with O(1)
// set/test and fast clearing.
package bitset

import "math/bits"

// Set is a fixed-capacity bitset over [0, Len()). The zero value is an
// empty set of capacity zero; use New for a sized set.
type Set struct {
	words []uint64
	n     int
}

// New returns a bitset with capacity for n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i. It panics if i is out of range.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit, keeping capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}
