package trace

import (
	"encoding/json"
	"testing"
)

// fakeClock is the injectable test clock: every reading advances it by
// step, so spans get deterministic, strictly increasing timestamps.
type fakeClock struct {
	now  int64
	step int64
}

func (c *fakeClock) read() int64 {
	c.now += c.step
	return c.now
}

func newTestRecorder(step int64) (*Recorder, *fakeClock) {
	c := &fakeClock{step: step}
	return New(Config{Clock: c.read}), c
}

func TestRecorderTimelineStartsAtZeroAndIsMonotonic(t *testing.T) {
	r, _ := newTestRecorder(10)
	sp := r.Begin(KindSweep, "")
	sp.End()
	p := r.Export()
	if len(p.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(p.Spans))
	}
	s := p.Spans[0]
	if s.Start < 0 || s.End <= s.Start {
		t.Fatalf("span not monotonic from zero: %+v", s)
	}
}

func TestNilRecorderAndActiveNoOp(t *testing.T) {
	var r *Recorder
	sp := r.Begin(KindBucket, "b")
	sp.SetDetail("later")
	sp.End()
	r.Mark(KindResume, "x")
	r.Observe(KindGraphOpen, "y", 5)
	r.SetSweep(3)
	if got := r.Sweep(); got != 0 {
		t.Fatalf("nil Sweep = %d", got)
	}
	if p := r.Export(); len(p.Spans) != 0 {
		t.Fatalf("nil Export spans = %d", len(p.Spans))
	}
}

func TestSweepWindowEvictionFoldsIntoTotals(t *testing.T) {
	r, _ := newTestRecorder(1)
	retain := 4
	r = New(Config{Clock: (&fakeClock{step: 1}).read, RetainSweeps: retain})
	sweeps := 10
	for i := 1; i <= sweeps; i++ {
		r.SetSweep(i)
		sp := r.Begin(KindBucket, "")
		sp.End()
	}
	p := r.Export()
	minSweep := sweeps - retain + 1
	for _, s := range p.Spans {
		if s.Sweep < minSweep {
			t.Fatalf("span from sweep %d survived a window of %d", s.Sweep, retain)
		}
	}
	if len(p.Spans) != retain {
		t.Fatalf("kept %d spans, want %d", len(p.Spans), retain)
	}
	tot := p.Dropped[KindBucket]
	if tot.Count != int64(sweeps-retain) {
		t.Fatalf("dropped count = %d, want %d", tot.Count, sweeps-retain)
	}
	if tot.Nanos <= 0 {
		t.Fatalf("dropped nanos = %d, want > 0", tot.Nanos)
	}
	// Cumulative totals survive in TotalsByKind alongside the live ring.
	all := p.TotalsByKind()[KindBucket]
	if all.Count != int64(sweeps) {
		t.Fatalf("cumulative count = %d, want %d", all.Count, sweeps)
	}
}

func TestHardCapEvictsOldestFirst(t *testing.T) {
	r := New(Config{Clock: (&fakeClock{step: 1}).read, Cap: 8})
	for i := 0; i < 20; i++ {
		r.Observe(KindCheckpointWrite, "", 1)
	}
	p := r.Export()
	if len(p.Spans) != 8 {
		t.Fatalf("ring = %d spans, want cap 8", len(p.Spans))
	}
	if p.Dropped[KindCheckpointWrite].Count != 12 {
		t.Fatalf("dropped = %d, want 12", p.Dropped[KindCheckpointWrite].Count)
	}
	for i := 1; i < len(p.Spans); i++ {
		if p.Spans[i].End < p.Spans[i-1].End {
			t.Fatalf("ring out of order at %d", i)
		}
	}
}

func TestRestoreContinuesTimeline(t *testing.T) {
	r, _ := newTestRecorder(5)
	r.SetSweep(2)
	r.Begin(KindSweep, "").End()
	p := r.Export()

	// A fresh process: the clock restarts from zero, but the restored
	// timeline must continue after p.Now, never rewind.
	r2 := Restore(Config{Clock: (&fakeClock{step: 5}).read}, p)
	r2.Mark(KindResume, "restart")
	r2.SetSweep(3)
	r2.Begin(KindSweep, "").End()
	p2 := r2.Export()

	if p2.Sweep != 3 {
		t.Fatalf("sweep after restore = %d, want 3", p2.Sweep)
	}
	if len(p2.Spans) != 3 {
		t.Fatalf("spans after restore = %d, want 3 (old sweep + resume + new sweep)", len(p2.Spans))
	}
	old := p2.Spans[0]
	for _, s := range p2.Spans[1:] {
		if s.Start < old.End {
			t.Fatalf("restored span %+v starts before persisted timeline end %d", s, old.End)
		}
	}
	var kinds []Kind
	for _, s := range p2.Spans {
		kinds = append(kinds, s.Kind)
	}
	want := []Kind{KindSweep, KindResume, KindSweep}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestOnSpanObserverSeesEverySpan(t *testing.T) {
	var got []Span
	r := New(Config{
		Clock:  (&fakeClock{step: 2}).read,
		OnSpan: func(s Span) { got = append(got, s) },
	})
	r.Begin(KindBucket, "b1").End()
	r.Mark(KindResume, "")
	r.Observe(KindSlotWait, "", 7)
	if len(got) != 3 {
		t.Fatalf("observer saw %d spans, want 3", len(got))
	}
	if got[2].End-got[2].Start != 7 {
		t.Fatalf("observed duration = %d, want 7", got[2].End-got[2].Start)
	}
}

func TestSetDetailAfterBegin(t *testing.T) {
	r, _ := newTestRecorder(1)
	sp := r.Begin(KindBucket, "before")
	sp.SetDetail("matched 42")
	sp.End()
	if d := r.Export().Spans[0].Detail; d != "matched 42" {
		t.Fatalf("detail = %q", d)
	}
}

func TestPersistedJSONRoundTrip(t *testing.T) {
	r, _ := newTestRecorder(3)
	r.SetSweep(1)
	r.Begin(KindSweep, "").End()
	r.Observe(KindCheckpointWrite, "shard 0 full", 9)
	p := r.Export()
	buf, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Persisted
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(p.Spans) || back.Now != p.Now || back.Sweep != p.Sweep {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, p)
	}
}

func TestChromeExport(t *testing.T) {
	r, _ := newTestRecorder(1000)
	r.SetSweep(1)
	sp := r.Begin(KindBucket, "b0 min 8")
	sp.End()
	ct := r.Export().Chrome("job-7")

	var complete []ChromeEvent
	meta := 0
	for _, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete = append(complete, ev)
		default:
			t.Fatalf("unexpected ph %q", ev.Ph)
		}
	}
	// process_name plus one thread_name per kind.
	if want := 1 + len(Kinds()); meta != want {
		t.Fatalf("metadata events = %d, want %d", meta, want)
	}
	if len(complete) != 1 {
		t.Fatalf("complete events = %d, want 1", len(complete))
	}
	ev := complete[0]
	if ev.Cat != string(KindBucket) || ev.Dur == nil || *ev.Dur <= 0 || ev.Ts < 0 {
		t.Fatalf("bad event %+v", ev)
	}
	if ev.Args["sweep"] != 1 {
		t.Fatalf("sweep arg = %v", ev.Args["sweep"])
	}
	// The payload must marshal: it is served directly by /trace?format=chrome.
	if _, err := json.Marshal(ct); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultClockIsMonotonic(t *testing.T) {
	r := New(Config{})
	r.Begin(KindSweep, "").End()
	r.Begin(KindSweep, "").End()
	p := r.Export()
	if len(p.Spans) != 2 {
		t.Fatalf("spans = %d", len(p.Spans))
	}
	if p.Spans[1].Start < p.Spans[0].Start || p.Spans[0].Start < 0 {
		t.Fatalf("default clock not monotonic: %+v", p.Spans)
	}
}
