// Package trace is a dependency-free per-job span recorder in the style of
// internal/metrics: a bounded ring of typed spans (sweeps, bucket phases,
// engine handoffs, checkpoint writes and replays, slot waits, seed ingests,
// graph opens) on a monotonic per-recorder timeline.
//
// Timestamps come from an injectable clock so that the packages that emit
// spans — internal/core above all — never read the wall clock themselves;
// the determinism analyzer's time.Now ban stays intact everywhere except the
// single sanctioned read in this file. A recorder created with a nil clock
// uses that default; tests inject a counter and get byte-stable traces.
//
// Retention mirrors the session phase log (core.PhaseRetainSweeps): spans
// are stamped with the sweep they belong to, and when the sweep counter
// advances past the window the evicted spans fold into cumulative per-kind
// totals, exactly like dropped phases fold into PhaseTotals. A hard ring
// cap bounds the sweep-0 boot spans and any pathological emitter. The
// Persisted form round-trips through the serve job store's checkpoint
// metadata, so a killed-then-resumed job's trace is continuous: Restore
// re-seats the timeline offset so new spans continue after the persisted
// ones, and the server marks the seam with a resume span.
package trace

import (
	"sort"
	"sync"
	"time"
)

// Kind is the type tag of a span. The set is closed and small on purpose:
// every kind maps to one lane in the Chrome export and one label value in
// the /metrics span-duration histogram, so label cardinality stays bounded.
type Kind string

const (
	KindSweep            Kind = "sweep"             // one full sweep of the bucket schedule
	KindBucket           Kind = "bucket"            // one bucket phase within a sweep
	KindHandoff          Kind = "engine-handoff"    // hybrid parallel→frontier state build
	KindCheckpointWrite  Kind = "checkpoint-write"  // one checkpoint record (or range shard) written+fsynced
	KindCheckpointReplay Kind = "checkpoint-replay" // one checkpoint record (or range shard) replayed at boot
	KindSlotWait         Kind = "slot-wait"         // scheduler Acquire: queued for a run slot
	KindSeedIngest       Kind = "seed-ingest"       // AddSeeds batch applied to the session
	KindGraphOpen        Kind = "graph-open"        // graph container opened (mapped or heap)
	KindResume           Kind = "resume"            // marker: job restored after a restart
)

// Kinds lists every span kind in a fixed order — the Chrome export and the
// metrics wiring iterate it instead of a map so output stays deterministic.
func Kinds() []Kind {
	return []Kind{
		KindSweep, KindBucket, KindHandoff, KindCheckpointWrite,
		KindCheckpointReplay, KindSlotWait, KindSeedIngest,
		KindGraphOpen, KindResume,
	}
}

// Span is one completed interval on the recorder's timeline. Start and End
// are nanoseconds since the recorder's creation (or, after a restore, since
// the original recorder's creation — the timeline survives restarts).
type Span struct {
	Kind   Kind   `json:"kind"`
	Sweep  int    `json:"sweep,omitempty"`
	Detail string `json:"detail,omitempty"`
	Start  int64  `json:"startNs"`
	End    int64  `json:"endNs"`
}

// Totals accumulates spans evicted from the ring, per kind — the trace
// analogue of the phase log's dropped PhaseTotals.
type Totals struct {
	Count int64 `json:"count"`
	Nanos int64 `json:"nanos"`
}

// Config parameterizes a Recorder. Zero values select the defaults noted on
// each field.
type Config struct {
	// Clock returns nanoseconds on a monotonic timeline. nil selects the
	// process clock (the one wall-clock read in this package).
	Clock func() int64
	// RetainSweeps is the sweep window to keep full spans for; evicted
	// spans fold into Totals. 0 selects DefaultRetainSweeps, which matches
	// the session phase log's window.
	RetainSweeps int
	// Cap bounds the ring regardless of sweep ages (boot spans carry sweep
	// 0 and would otherwise pile up before the first eviction). 0 selects
	// DefaultCap.
	Cap int
	// OnSpan, if set, observes every completed span after it is recorded.
	// It runs outside the recorder mutex on the emitting goroutine;
	// cmd/serve feeds the span-duration histogram from it.
	OnSpan func(Span)
}

const (
	// DefaultRetainSweeps mirrors core's phase-log window. The two values
	// are pinned equal by a test in internal/core, since trace cannot
	// import core (core imports trace).
	DefaultRetainSweeps = 16
	// DefaultCap bounds the span ring. At the default retention this is
	// far above what a job emits in a window; it exists to bound sweep-0
	// boot spans and misbehaving emitters.
	DefaultCap = 4096
)

// Recorder collects spans for one job. All methods are safe for concurrent
// use and safe on a nil receiver (they no-op), so emitters can hold an
// optional recorder without nil checks at every call site.
type Recorder struct {
	mu      sync.Mutex
	clock   func() int64
	offset  int64 // added to clock() so restored timelines continue, not restart
	retain  int
	cap     int
	onSpan  func(Span)
	sweep   int // current sweep, stamped onto spans and driving eviction
	spans   []Span
	dropped map[Kind]Totals
}

// New builds a recorder whose timeline starts at zero.
func New(cfg Config) *Recorder {
	r := newRecorder(cfg)
	r.offset = -r.clock()
	return r
}

// Restore builds a recorder that continues a persisted trace: the ring,
// totals and sweep context are re-seated and the timeline offset is set so
// the next reading lands at the persisted clock position, never before it.
// The caller marks the seam itself (see Mark and KindResume) so it can
// attach restart context to the marker.
func Restore(cfg Config, p *Persisted) *Recorder {
	r := newRecorder(cfg)
	r.offset = p.Now - r.clock()
	r.sweep = p.Sweep
	r.spans = append(r.spans, p.Spans...)
	for k, t := range p.Dropped {
		r.dropped[k] = t
	}
	r.evictLocked()
	return r
}

func newRecorder(cfg Config) *Recorder {
	r := &Recorder{
		clock:   cfg.Clock,
		retain:  cfg.RetainSweeps,
		cap:     cfg.Cap,
		onSpan:  cfg.OnSpan,
		dropped: make(map[Kind]Totals),
	}
	if r.clock == nil {
		r.clock = wallNanos
	}
	if r.retain <= 0 {
		r.retain = DefaultRetainSweeps
	}
	if r.cap <= 0 {
		r.cap = DefaultCap
	}
	return r
}

// wallNanos is the default clock: monotonic nanoseconds since its first
// call. It is the one sanctioned wall-clock read in a determinism-covered
// package — every deterministic emitter receives timestamps through an
// injected clock instead, which is what keeps the analyzer's time.Now ban
// meaningful (see the internal/trace row in internal/analysis/policy.go).
//
//lint:allow determinism trace timestamps are observability metadata that never feed matching state; deterministic packages inject their own clock via Config.Clock
func wallNanos() int64 { epochOnce.Do(func() { epoch = time.Now() }); return int64(time.Since(epoch)) }

var (
	epochOnce sync.Once
	epoch     time.Time
)

// now returns the current reading on the recorder's timeline.
func (r *Recorder) now() int64 { return r.clock() + r.offset }

// SetSweep advances the sweep context: subsequent spans are stamped with n,
// and spans older than the retention window fold into the dropped totals.
func (r *Recorder) SetSweep(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.sweep {
		r.sweep = n
	}
	r.evictLocked()
}

// Sweep returns the current sweep context.
func (r *Recorder) Sweep() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sweep
}

// evictLocked enforces both retention bounds: the sweep window first, then
// the hard ring cap (oldest spans fold first). Caller holds r.mu.
func (r *Recorder) evictLocked() {
	minSweep := r.sweep - r.retain + 1
	if minSweep > 0 {
		kept := r.spans[:0]
		for _, s := range r.spans {
			if s.Sweep < minSweep {
				r.dropLocked(s)
				continue
			}
			kept = append(kept, s)
		}
		r.spans = kept
	}
	for len(r.spans) > r.cap {
		r.dropLocked(r.spans[0])
		r.spans = r.spans[1:]
	}
}

func (r *Recorder) dropLocked(s Span) {
	t := r.dropped[s.Kind]
	t.Count++
	t.Nanos += s.End - s.Start
	r.dropped[s.Kind] = t
}

// Active is an in-flight span returned by Begin. End completes and records
// it. A nil Active (from a nil recorder) no-ops.
type Active struct {
	r      *Recorder
	kind   Kind
	detail string
	start  int64
}

// Begin opens a span of the given kind, stamped with the current sweep
// context when it ends.
func (r *Recorder) Begin(kind Kind, detail string) *Active {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	start := r.now()
	r.mu.Unlock()
	return &Active{r: r, kind: kind, detail: detail, start: start}
}

// SetDetail replaces the span's detail — for emitters that only know the
// interesting numbers (matches committed, bytes written) once the work is
// done.
func (a *Active) SetDetail(detail string) {
	if a == nil {
		return
	}
	a.detail = detail
}

// End completes the span and records it.
func (a *Active) End() {
	if a == nil {
		return
	}
	r := a.r
	r.mu.Lock()
	sp := Span{Kind: a.kind, Sweep: r.sweep, Detail: a.detail, Start: a.start, End: r.now()}
	r.recordLocked(sp)
	fn := r.onSpan
	r.mu.Unlock()
	if fn != nil {
		fn(sp)
	}
}

// Mark records a zero-length marker span at the current time — used for
// instants like the resume seam.
func (r *Recorder) Mark(kind Kind, detail string) {
	r.Observe(kind, detail, 0)
}

// Observe records a span of the given duration ending now — for work
// measured before the recorder existed (boot-time graph opens and
// checkpoint replays are timed by the store, then observed onto the job's
// recorder once it is built).
func (r *Recorder) Observe(kind Kind, detail string, nanos int64) {
	if r == nil {
		return
	}
	if nanos < 0 {
		nanos = 0
	}
	r.mu.Lock()
	end := r.now()
	sp := Span{Kind: kind, Sweep: r.sweep, Detail: detail, Start: end - nanos, End: end}
	r.recordLocked(sp)
	fn := r.onSpan
	r.mu.Unlock()
	if fn != nil {
		fn(sp)
	}
}

func (r *Recorder) recordLocked(sp Span) {
	r.spans = append(r.spans, sp)
	r.evictLocked()
}

// Persisted is the serializable form of a recorder: what jobMeta carries
// through checkpoints. Dropped uses the kind as a JSON object key, which is
// stable; Spans keep ring order (completion order).
type Persisted struct {
	Now     int64           `json:"nowNs"`
	Sweep   int             `json:"sweep"`
	Spans   []Span          `json:"spans"`
	Dropped map[Kind]Totals `json:"dropped,omitempty"`
}

// Export snapshots the recorder. The result aliases nothing — it is safe to
// serialize concurrently with further recording.
func (r *Recorder) Export() *Persisted {
	if r == nil {
		return &Persisted{Spans: []Span{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &Persisted{
		Now:   r.now(),
		Sweep: r.sweep,
		Spans: append([]Span{}, r.spans...),
	}
	if len(r.dropped) > 0 {
		p.Dropped = make(map[Kind]Totals, len(r.dropped))
		for k, t := range r.dropped {
			p.Dropped[k] = t
		}
	}
	return p
}

// TotalsByKind folds the live ring and the dropped totals into one
// cumulative per-kind summary — the number the loadgen report and the
// /trace endpoint both want.
func (p *Persisted) TotalsByKind() map[Kind]Totals {
	out := make(map[Kind]Totals, len(p.Dropped)+4)
	for k, t := range p.Dropped {
		out[k] = t
	}
	for _, s := range p.Spans {
		t := out[s.Kind]
		t.Count++
		t.Nanos += s.End - s.Start
		out[s.Kind] = t
	}
	return out
}

// ChromeTrace is the Chrome trace_event JSON object form of a trace,
// loadable in Perfetto or chrome://tracing. Marshal it as-is.
type ChromeTrace struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

// ChromeEvent is one trace_event record. Complete spans use ph "X"
// (duration events); metadata records use ph "M".
type ChromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"` // microseconds
	// Dur is a pointer so complete events always carry a dur field — even
	// dur:0, which Perfetto requires for ph "X" — while metadata omit it.
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Chrome converts the trace to trace_event form: one thread lane per span
// kind, spans sorted by start time so the output is stable for a given
// Persisted value. process names the trace's process lane (the job id).
func (p *Persisted) Chrome(process string) *ChromeTrace {
	const pid = 1
	tids := map[Kind]int{}
	ct := &ChromeTrace{TraceEvents: []ChromeEvent{{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": process},
	}}}
	for i, k := range Kinds() {
		tids[k] = i + 1
		ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
			Args: map[string]any{"name": string(k)},
		})
	}
	spans := append([]Span{}, p.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		name := string(s.Kind)
		if s.Detail != "" {
			name += " " + s.Detail
		}
		dur := float64(s.End-s.Start) / 1e3
		ev := ChromeEvent{
			Name: name,
			Cat:  string(s.Kind),
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  &dur,
			Pid:  pid,
			Tid:  tids[s.Kind],
			Args: map[string]any{"sweep": s.Sweep},
		}
		if s.Detail != "" {
			ev.Args["detail"] = s.Detail
		}
		ct.TraceEvents = append(ct.TraceEvents, ev)
	}
	return ct
}
