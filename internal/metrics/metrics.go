// Package metrics is a small, dependency-free metrics registry exposing the
// Prometheus text format (version 0.0.4). It exists so cmd/serve can answer
// GET /metrics without pulling the Prometheus client library into a module
// that is otherwise stdlib-only.
//
// Three instrument kinds cover the serve layer's needs:
//
//   - Counter: a monotone total (requests served, bytes written);
//   - Gauge: a settable level (queue depth, active jobs), optionally
//     refreshed by a scrape callback so values are read at exposition time;
//   - Histogram: fixed cumulative buckets plus sum and count, from which a
//     scraper derives quantiles (p50/p99 request latency).
//
// Each instrument comes in a plain and a labelled (Vec) form. Label values
// are escaped per the exposition format, and instruments of one family are
// written sorted by label value, so the output is byte-deterministic for a
// given registry state — the metrics tests diff exact lines.
//
// Concurrency: all instrument methods are safe for concurrent use. The
// counters and gauges are atomics; histograms take a short mutex per
// observation. WritePrometheus takes each family's mutex only to snapshot.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency buckets in seconds: enough resolution
// for sub-millisecond in-process handlers at the bottom and multi-second
// checkpoint fsyncs at the top. Histogram quantiles are only as fine as
// their buckets, so p50/p99 read from these are bucket upper bounds, which
// is the precision a load gate needs (order-of-magnitude regressions, not
// 5% drifts).
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry holds metric families in registration order.
type Registry struct {
	mu         sync.Mutex
	families   []*family
	byName     map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with all its labelled children.
type family struct {
	name   string
	help   string
	kind   string // "counter" | "gauge" | "histogram"
	labels []string

	mu       sync.Mutex
	children map[string]metric // key: joined label values
}

// metric is one (labelled) instrument inside a family.
type metric interface {
	write(w io.Writer, fam *family, labelValues []string)
}

// register adds a family, panicking on a duplicate or invalid name —
// metric registration is program structure, not runtime input, so mistakes
// should fail at startup, loudly.
func (r *Registry) register(name, help, kind string, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, children: make(map[string]metric)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// child returns (creating if needed) the instrument for one label-value
// tuple. make builds the zero instrument.
func (f *family) child(labelValues []string, make func() metric) metric {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s takes %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.children[key]
	if m == nil {
		m = make()
		f.children[key] = m
	}
	return m
}

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increments the counter by v (v < 0 panics: counters are monotone).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decrement")
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, fam *family, labelValues []string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPairs(fam.labels, labelValues), formatFloat(c.Value()))
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments (or, negative v, decrements) the gauge.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, fam *family, labelValues []string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPairs(fam.labels, labelValues), formatFloat(g.Value()))
}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	upper []float64 // sorted upper bounds, +Inf implicit

	mu     sync.Mutex
	counts []uint64 // one per upper bound
	inf    uint64   // observations above the last bound
	sum    float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (the default is 14): linear scan beats binary search
	// at this size and keeps the hot path branch-predictable.
	h.mu.Lock()
	placed := false
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.sum += v
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.inf
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// — the same estimate a Prometheus histogram_quantile yields with these
// buckets. q is clamped into [0, 1]: q <= 0 answers the first populated
// bucket's bound, q >= 1 the last populated one (+Inf only when
// observations actually landed past the final bound). With no observations
// it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := h.inf
	for _, c := range h.counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		// q = 0 would otherwise produce rank 0, which every bucket's running
		// count satisfies — answering upper[0] even when the first buckets
		// are empty.
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return h.upper[i]
		}
	}
	return math.Inf(1)
}

func (h *Histogram) write(w io.Writer, fam *family, labelValues []string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	inf, sum := h.inf, h.sum
	h.mu.Unlock()
	// Fresh copies: appending to the family's shared label slice in place
	// would race a concurrent scrape on the backing array.
	leNames := append(append([]string{}, fam.labels...), "le")
	var cum uint64
	for i, ub := range h.upper {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
			labelPairs(leNames, append(append([]string{}, labelValues...), formatFloat(ub))), cum)
	}
	cum += inf
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
		labelPairs(leNames, append(append([]string{}, labelValues...), "+Inf")), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labelPairs(fam.labels, labelValues), formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labelPairs(fam.labels, labelValues), cum)
}

// Counter registers an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	return f.child(nil, func() metric { return &Counter{} }).(*Counter)
}

// Gauge registers an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	return f.child(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram registers an unlabelled histogram over the given bucket upper
// bounds (nil: DefBuckets). Bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil)
	return f.child(nil, func() metric { return newHistogram(name, buckets) }).(*Histogram)
}

func newHistogram(name string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("metrics: %s buckets not sorted", name))
	}
	return &Histogram{upper: append([]float64(nil), buckets...), counts: make([]uint64, len(buckets))}
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labels)}
}

// With returns the counter for one label-value tuple, creating it at zero.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() metric { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labels)}
}

// With returns the gauge for one label-value tuple, creating it at zero.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() metric { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by labels, sharing one
// bucket layout.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a labelled histogram family (nil buckets:
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, "histogram", labels), buckets}
}

// With returns the histogram for one label-value tuple, creating it empty.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues, func() metric { return newHistogram(v.f.name, v.buckets) }).(*Histogram)
}

// OnCollect registers fn to run at the start of every exposition, before
// any family is written. Scrape-time gauges (queue depths, job counts) are
// refreshed here so every scrape reads a consistent, current snapshot
// without the instruments polling in the background.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// WritePrometheus writes every family in registration order, children
// sorted by label values, in the Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	fams := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	for _, f := range fams {
		f.write(w)
	}
}

// Handler returns the GET /metrics handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]metric, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return // a Vec with no children yet writes nothing, like Prometheus
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for i, k := range keys {
		var values []string
		if k != "" || len(f.labels) > 0 {
			values = strings.Split(k, "\xff")
		}
		children[i].write(w, f, values)
	}
}

// labelPairs renders {a="x",b="y"} (empty string for no labels), escaping
// values per the exposition format.
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value: backslash, double quote and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
