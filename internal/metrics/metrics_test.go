package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func dump(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs accepted")
	c.Inc()
	c.Add(2)
	want := "# HELP jobs_total jobs accepted\n# TYPE jobs_total counter\njobs_total 3\n"
	if got := dump(r); got != want {
		t.Fatalf("exposition:\n%q\nwant\n%q", got, want)
	}
	if c.Value() != 3 {
		t.Fatalf("Value = %v", c.Value())
	}
}

func TestCounterVecSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "route", "code")
	v.With("/v1/jobs", "200").Inc()
	v.With("/v1/jobs", "200").Inc()
	v.With(`/v1/"x"`+"\n", "404").Inc()
	got := dump(r)
	want := strings.Join([]string{
		"# HELP req_total requests",
		"# TYPE req_total counter",
		`req_total{route="/v1/\"x\"\n",code="404"} 1`,
		`req_total{route="/v1/jobs",code="200"} 2`,
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition:\n%q\nwant\n%q", got, want)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("Value = %v", g.Value())
	}
	if !strings.Contains(dump(r), "depth 3\n") {
		t.Fatalf("exposition: %q", dump(r))
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 3} {
		h.Observe(v)
	}
	got := dump(r)
	for _, line := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 3.545`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 0.1 {
		t.Fatalf("p50 = %v, want 0.1", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("p99 = %v, want +Inf", q)
	}
	if q := h.Quantile(0.2); q != 0.01 {
		t.Fatalf("p20 = %v, want 0.01", q)
	}
}

func TestHistogramVecSharedBuckets(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("w_seconds", "waits", []float64{1, 2}, "tenant")
	v.With("a").Observe(1.5)
	v.With("b").Observe(0.5)
	got := dump(r)
	for _, line := range []string{
		`w_seconds_bucket{tenant="a",le="1"} 0`,
		`w_seconds_bucket{tenant="a",le="2"} 1`,
		`w_seconds_bucket{tenant="b",le="1"} 1`,
		`w_seconds_count{tenant="b"} 1`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, got)
		}
	}
}

func TestEmptyVecWritesNothing(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("unused_total", "never touched", "x")
	if got := dump(r); got != "" {
		t.Fatalf("empty vec produced output: %q", got)
	}
}

func TestOnCollectRefreshesGauges(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("live", "refreshed at scrape")
	n := 0.0
	r.OnCollect(func() { n += 7; g.Set(n) })
	if !strings.Contains(dump(r), "live 7\n") {
		t.Fatal("first scrape did not run collector")
	}
	if !strings.Contains(dump(r), "live 14\n") {
		t.Fatal("second scrape did not rerun collector")
	}
}

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "empty", nil)
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

// TestQuantileEdgeCases pins the estimator's boundary behaviour: q clamps
// into [0, 1] (q <= 0 answers the first populated bucket, q >= 1 the last),
// a single-bucket population answers that bucket at every q, and an
// all-overflow population answers +Inf — but +Inf never appears while every
// observation sits in a finite bucket.
func TestQuantileEdgeCases(t *testing.T) {
	buckets := []float64{0.01, 0.1, 1}
	t.Run("all in first bucket", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", buckets)
		for i := 0; i < 5; i++ {
			h.Observe(0.001)
		}
		for _, q := range []float64{-0.5, 0, 0.0001, 0.5, 1, 1.5} {
			if got := h.Quantile(q); got != 0.01 {
				t.Fatalf("Quantile(%v) = %v, want 0.01", q, got)
			}
		}
	})
	t.Run("all in +Inf bucket", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", buckets)
		for i := 0; i < 5; i++ {
			h.Observe(50)
		}
		for _, q := range []float64{0, 0.5, 1} {
			if got := h.Quantile(q); !math.IsInf(got, 1) {
				t.Fatalf("Quantile(%v) = %v, want +Inf", q, got)
			}
		}
	})
	t.Run("clamping", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", buckets)
		h.Observe(0.001) // first bucket
		h.Observe(0.5)   // last finite bucket
		if got := h.Quantile(0); got != 0.01 {
			t.Fatalf("Quantile(0) = %v, want first populated bucket 0.01", got)
		}
		if got := h.Quantile(-3); got != 0.01 {
			t.Fatalf("Quantile(-3) = %v, want first populated bucket 0.01", got)
		}
		// q >= 1 must answer the last populated finite bucket, not +Inf:
		// nothing overflowed.
		if got := h.Quantile(1); got != 1 {
			t.Fatalf("Quantile(1) = %v, want 1", got)
		}
		if got := h.Quantile(7); got != 1 {
			t.Fatalf("Quantile(7) = %v, want 1", got)
		}
	})
}

func TestRegisterPanics(t *testing.T) {
	for name, fn := range map[string]func(*Registry){
		"duplicate":   func(r *Registry) { r.Counter("a_total", ""); r.Counter("a_total", "") },
		"bad name":    func(r *Registry) { r.Counter("1bad", "") },
		"bad label":   func(r *Registry) { r.CounterVec("ok_total", "", "bad-label") },
		"wrong arity": func(r *Registry) { r.CounterVec("ok_total", "", "a").With("x", "y") },
		"neg counter": func(r *Registry) { r.Counter("ok_total", "").Add(-1) },
		"bad buckets": func(r *Registry) { r.Histogram("h", "", []float64{2, 1}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn(NewRegistry())
		})
	}
}

// TestConcurrentUse is the package's -race probe: all instrument kinds
// hammered while a scraper loops.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("c_total", "", "k")
	g := r.Gauge("g", "")
	h := r.HistogramVec("h_seconds", "", nil, "k")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w))
			for i := 0; i < 500; i++ {
				c.With(key).Inc()
				g.Add(1)
				h.With(key).Observe(float64(i) / 1000)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = dump(r)
		}
	}()
	wg.Wait()
	if got := c.With("a").Value(); got != 500 {
		t.Fatalf("counter a = %v", got)
	}
	if got := g.Value(); got != 2000 {
		t.Fatalf("gauge = %v", got)
	}
}
