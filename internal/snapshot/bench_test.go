package snapshot

import (
	"bytes"
	"io"
	"testing"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/graph"
)

// BenchmarkSnapshotEncode measures full-snapshot encoding throughput
// (bytes/op is the snapshot size; MB/s is the headline recorded in
// BENCH_snapshot.json).
func BenchmarkSnapshotEncode(b *testing.B) {
	opts := core.DefaultOptions()
	g1, g2, s := testSession(b, 99, 20000, opts, 0)
	s.RunUntilStable(10)
	st := s.ExportState()
	var buf bytes.Buffer
	if err := Write(&buf, g1, g2, st); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(io.Discard, g1, g2, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotDecode measures full-snapshot decoding (including all
// structural re-validation) throughput.
func BenchmarkSnapshotDecode(b *testing.B) {
	opts := core.DefaultOptions()
	g1, g2, s := testSession(b, 99, 20000, opts, 0)
	s.RunUntilStable(10)
	var buf bytes.Buffer
	if err := Write(&buf, g1, g2, s.ExportState()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncodeState measures a state-only checkpoint — what
// cmd/serve writes at every sweep boundary once the graphs are on disk.
func BenchmarkSnapshotEncodeState(b *testing.B) {
	opts := core.DefaultOptions()
	_, _, s := testSession(b, 99, 20000, opts, 0)
	s.RunUntilStable(10)
	st := s.ExportState()
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteState(io.Discard, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotExportState isolates the in-memory deep copy from the
// byte encoding.
func BenchmarkSnapshotExportState(b *testing.B) {
	opts := core.DefaultOptions()
	_, _, s := testSession(b, 99, 20000, opts, 0)
	s.RunUntilStable(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ExportState()
	}
}

// deltaWorkload reproduces the incremental benchmark workload at checkpoint
// granularity: a converged 20k-node session ingests a handful of fresh seeds
// and re-sweeps to stability; base is the state at the pre-ingest checkpoint
// and cur the one after. The delta between them is what a per-sweep
// checkpoint writes in steady state.
func deltaWorkload(b *testing.B) (base, cur *core.SessionState) {
	b.Helper()
	opts := core.DefaultOptions()
	g1, g2, s := testSession(b, 99, 20000, opts, 0)
	s.RunUntilStable(10)
	base = s.ExportState()
	usedL := map[graph.NodeID]bool{}
	usedR := map[graph.NodeID]bool{}
	for _, p := range s.Result().Pairs {
		usedL[p.Left] = true
		usedR[p.Right] = true
	}
	injected := 0
	for v := 0; v < g1.NumNodes() && v < g2.NumNodes() && injected < 20; v++ {
		p := graph.Pair{Left: graph.NodeID(v), Right: graph.NodeID(v)}
		if usedL[p.Left] || usedR[p.Right] {
			continue
		}
		if err := s.AddSeeds([]graph.Pair{p}); err != nil {
			b.Fatal(err)
		}
		injected++
	}
	if injected == 0 {
		b.Fatal("no free identity pairs on the converged instance")
	}
	s.RunUntilStable(10)
	return base, s.ExportState()
}

// BenchmarkDeltaDiff measures computing the churn record (core.DiffStates)
// on the incremental workload — the in-memory half of a delta checkpoint.
func BenchmarkDeltaDiff(b *testing.B) {
	base, cur := deltaWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DiffStates(base, cur); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaEncode measures encoding a delta checkpoint on the
// incremental workload. bytes/op is the delta record size — compare with
// BenchmarkSnapshotEncodeState's bytes/op (the full checkpoint this record
// replaces); BENCH_store.json records the ratio.
func BenchmarkDeltaEncode(b *testing.B) {
	base, cur := deltaWorkload(b)
	d, err := core.DiffStates(base, cur)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteDelta(io.Discard, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaDecodeApply measures the restore half: decoding a delta
// record and replaying it onto the base state.
func BenchmarkDeltaDecodeApply(b *testing.B) {
	base, cur := deltaWorkload(b)
	d, err := core.DiffStates(base, cur)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := ReadDelta(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.ApplyDelta(base, rd); err != nil {
			b.Fatal(err)
		}
	}
}
