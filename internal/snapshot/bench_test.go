package snapshot

import (
	"bytes"
	"io"
	"testing"

	"github.com/sociograph/reconcile/internal/core"
)

// BenchmarkSnapshotEncode measures full-snapshot encoding throughput
// (bytes/op is the snapshot size; MB/s is the headline recorded in
// BENCH_snapshot.json).
func BenchmarkSnapshotEncode(b *testing.B) {
	opts := core.DefaultOptions()
	g1, g2, s := testSession(b, 99, 20000, opts, 0)
	s.RunUntilStable(10)
	st := s.ExportState()
	var buf bytes.Buffer
	if err := Write(&buf, g1, g2, st); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(io.Discard, g1, g2, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotDecode measures full-snapshot decoding (including all
// structural re-validation) throughput.
func BenchmarkSnapshotDecode(b *testing.B) {
	opts := core.DefaultOptions()
	g1, g2, s := testSession(b, 99, 20000, opts, 0)
	s.RunUntilStable(10)
	var buf bytes.Buffer
	if err := Write(&buf, g1, g2, s.ExportState()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncodeState measures a state-only checkpoint — what
// cmd/serve writes at every sweep boundary once the graphs are on disk.
func BenchmarkSnapshotEncodeState(b *testing.B) {
	opts := core.DefaultOptions()
	_, _, s := testSession(b, 99, 20000, opts, 0)
	s.RunUntilStable(10)
	st := s.ExportState()
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteState(io.Discard, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotExportState isolates the in-memory deep copy from the
// byte encoding.
func BenchmarkSnapshotExportState(b *testing.B) {
	opts := core.DefaultOptions()
	_, _, s := testSession(b, 99, 20000, opts, 0)
	s.RunUntilStable(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ExportState()
	}
}
