// Package snapshot is the versioned binary codec for durable reconciliation
// state: CSR graphs, the matching with its seed boundary, the bucket-schedule
// position, and the frontier engine's proposal cache and dirty worklists.
//
// Every stream is framed the same way:
//
//	magic "RSNP" | uvarint version | kind byte | payload | CRC32-IEEE trailer
//
// where the trailer covers everything before it. Five kinds exist: a full
// snapshot (both graphs followed by the session state), a single graph, a
// state-only snapshot (for stores that write the immutable graphs once and
// checkpoint only the mutable state), a delta record (the changes since a
// prior state checkpoint — see delta.go — for stores that checkpoint every
// sweep and amortize full snapshots), and a range manifest (the global
// record binding a large job's per-node-range state shards — see
// manifest.go). The encoding is canonical — one byte
// stream per value — so decode∘encode is the identity on bytes as well as on
// values, which the round-trip fuzz suite pins.
//
// Decoding is defensive end to end: all lengths are re-derived or
// cross-checked, allocations grow only as payload bytes actually arrive (a
// forged length fails at the truncated read, it does not pre-allocate), and
// corrupt, truncated, or version-skewed input returns an error — never a
// panic. Semantic invariants of the state itself (injectivity, schedule
// consistency, frontier-cache shape) are checked one layer up by
// core.RestoreSession.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/graph"
)

// Version is the current snapshot format version. Decoders reject newer
// versions (forward compatibility is explicit: bump this when the payload
// layout changes, and teach Read the old layouts).
//
// Version history:
//
//	1 — initial layout (PR 3), delta records (PR 4).
//	2 — state and delta payloads gained the hybrid-engine regime flag and
//	    the bounded phase log's evicted totals (phases dropped, matches
//	    dropped). Version-1 streams decode with those fields zero — exactly
//	    the state every pre-hybrid session was in.
const Version = 2

// oldestReadable is the oldest format version Read still understands.
const oldestReadable = 1

var magic = [4]byte{'R', 'S', 'N', 'P'}

// Stream kinds.
const (
	kindFull     byte = 1 // g1, g2, session state
	kindGraph    byte = 2 // a single graph
	kindState    byte = 3 // session state only
	kindDelta    byte = 4 // a delta record against a prior state checkpoint
	kindManifest byte = 5 // a range manifest binding per-range state shards (manifest.go)
)

var errBadMagic = errors.New("snapshot: bad magic (not a snapshot stream)")

// Write writes a full snapshot: both graphs and the session state.
func Write(w io.Writer, g1, g2 *graph.Graph, st *core.SessionState) error {
	return write(w, kindFull, func(ew *writer) error {
		if err := graph.EncodeBinary(ew, g1); err != nil {
			return err
		}
		if err := graph.EncodeBinary(ew, g2); err != nil {
			return err
		}
		return encodeState(ew, st)
	})
}

// Read reads a full snapshot.
func Read(r io.Reader) (g1, g2 *graph.Graph, st *core.SessionState, err error) {
	err = read(r, kindFull, func(er *reader, v uint64) error {
		if g1, err = graph.DecodeBinary(er); err != nil {
			return err
		}
		if g2, err = graph.DecodeBinary(er); err != nil {
			return err
		}
		st, err = decodeState(er, v)
		return err
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return g1, g2, st, nil
}

// WriteGraph writes a single framed graph.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	return write(w, kindGraph, func(ew *writer) error { return graph.EncodeBinary(ew, g) })
}

// ReadGraph reads a single framed graph.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	var g *graph.Graph
	err := read(r, kindGraph, func(er *reader, _ uint64) error {
		var derr error
		g, derr = graph.DecodeBinary(er)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// WriteState writes a state-only snapshot (the graphs live elsewhere).
func WriteState(w io.Writer, st *core.SessionState) error {
	return write(w, kindState, func(ew *writer) error { return encodeState(ew, st) })
}

// ReadState reads a state-only snapshot.
func ReadState(r io.Reader) (*core.SessionState, error) {
	var st *core.SessionState
	err := read(r, kindState, func(er *reader, v uint64) error {
		var derr error
		st, derr = decodeState(er, v)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// writer frames a payload: everything written through it is buffered and
// CRC-summed; close writes the trailer.
type writer struct {
	bw  *bufio.Writer
	crc hash.Hash32
}

func (w *writer) Write(p []byte) (int, error) {
	n, err := w.bw.Write(p)
	w.crc.Write(p[:n])
	return n, err
}

func (w *writer) byte(b byte) error {
	_, err := w.Write([]byte{b})
	return err
}

func (w *writer) uvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	_, err := w.Write(buf[:binary.PutUvarint(buf[:], v)])
	return err
}

// uint validates a non-negative int and writes it as a uvarint.
func (w *writer) uint(v int, what string) error {
	if v < 0 {
		return fmt.Errorf("snapshot: encode: negative %s %d", what, v)
	}
	return w.uvarint(uint64(v))
}

func write(w io.Writer, kind byte, payload func(*writer) error) error {
	ew := &writer{bw: bufio.NewWriter(w), crc: crc32.NewIEEE()}
	if _, err := ew.Write(magic[:]); err != nil {
		return err
	}
	if err := ew.uvarint(Version); err != nil {
		return err
	}
	if err := ew.byte(kind); err != nil {
		return err
	}
	if err := payload(ew); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], ew.crc.Sum32())
	if _, err := ew.bw.Write(trailer[:]); err != nil { // not CRC-summed
		return err
	}
	return ew.bw.Flush()
}

// reader mirrors writer: all payload reads go through the CRC; verify checks
// the trailer against the sum.
type reader struct {
	br  *bufio.Reader
	crc hash.Hash32
}

func (r *reader) Read(p []byte) (int, error) {
	n, err := r.br.Read(p)
	r.crc.Write(p[:n])
	return n, err
}

func (r *reader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.crc.Write([]byte{b})
	}
	return b, err
}

// full is io.ReadFull with EOF mapped to ErrUnexpectedEOF: inside a payload,
// running out of bytes is always a truncation.
func (r *reader) full(p []byte) error {
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

func (r *reader) byte(what string) (byte, error) {
	b, err := r.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("snapshot: decode %s: %w", what, err)
	}
	return b, nil
}

func (r *reader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("snapshot: decode %s: %w", what, err)
	}
	return v, nil
}

// uint reads a uvarint that must fit a non-negative int.
func (r *reader) uint(what string) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt64/2 {
		return 0, fmt.Errorf("snapshot: decode %s: value %d out of range", what, v)
	}
	return int(v), nil
}

func read(r io.Reader, kind byte, payload func(*reader, uint64) error) error {
	er := &reader{br: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var m [4]byte
	if err := er.full(m[:]); err != nil {
		return fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if m != magic {
		return errBadMagic
	}
	v, err := er.uvarint("version")
	if err != nil {
		return err
	}
	if v < oldestReadable || v > Version {
		return fmt.Errorf("snapshot: unsupported format version %d (this build reads %d through %d)", v, oldestReadable, Version)
	}
	k, err := er.byte("kind")
	if err != nil {
		return err
	}
	if k != kind {
		return fmt.Errorf("snapshot: stream kind %d, want %d", k, kind)
	}
	if err := payload(er, v); err != nil {
		return err
	}
	sum := er.crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(er.br, trailer[:]); err != nil { // not CRC-summed
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("snapshot: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != sum {
		return fmt.Errorf("snapshot: checksum mismatch (stored %08x, computed %08x): corrupt snapshot", got, sum)
	}
	return nil
}

// chunkU32 is how many uint32 values the codec moves per bulk Read/Write.
const chunkU32 = 16 * 1024

// writeU32s writes values produced by at as little-endian uint32s.
func writeU32s(w *writer, n int, at func(int) uint32) error {
	buf := make([]byte, 0, 4*chunkU32)
	for i := 0; i < n; i++ {
		buf = binary.LittleEndian.AppendUint32(buf, at(i))
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	_, err := w.Write(buf)
	return err
}

// readU32s reads count little-endian uint32s into set, in bounded chunks so
// a forged count fails at the truncated read instead of allocating it.
func readU32s(r *reader, count uint64, set func(i int, v uint32)) error {
	buf := make([]byte, 4*chunkU32)
	idx := 0
	for count > 0 {
		c := count
		if c > chunkU32 {
			c = chunkU32
		}
		b := buf[:4*c]
		if err := r.full(b); err != nil {
			return err
		}
		for i := uint64(0); i < c; i++ {
			set(idx, binary.LittleEndian.Uint32(b[4*i:]))
			idx++
		}
		count -= c
	}
	return nil
}

// appendU32s reads count uint32s growing the destination chunk by chunk.
func appendU32s[T ~uint32](r *reader, count uint64, what string) ([]T, error) {
	if count == 0 {
		return nil, nil
	}
	if count > math.MaxInt64/8 {
		return nil, fmt.Errorf("snapshot: decode %s: length %d out of range", what, count)
	}
	out := []T(nil)
	err := readU32s(r, count, func(_ int, v uint32) { out = append(out, T(v)) })
	if err != nil {
		return nil, fmt.Errorf("snapshot: decode %s: %w", what, err)
	}
	return out, nil
}

// optionFields flattens the Options struct into its wire order, shared by
// encode and decode so the two cannot drift.
func optionFields(o *core.Options) []struct {
	v    *int
	what string
} {
	return []struct {
		v    *int
		what string
	}{
		{&o.Threshold, "threshold"},
		{&o.Iterations, "iterations"},
		{&o.MinBucketExp, "min bucket exp"},
		{&o.MaxDegree, "max degree"},
		{(*int)(&o.Engine), "engine"},
		{&o.Workers, "workers"},
		{(*int)(&o.Ties), "tie policy"},
		{(*int)(&o.Scoring), "scoring"},
		{&o.MinMargin, "min margin"},
	}
}

// encodeState writes the session-state payload.
func encodeState(w *writer, st *core.SessionState) error {
	o := st.Opts
	for _, f := range optionFields(&o) {
		if err := w.uint(*f.v, f.what); err != nil {
			return err
		}
	}
	disabled := byte(0)
	if o.DisableBucketing {
		disabled = 1
	}
	if err := w.byte(disabled); err != nil {
		return err
	}

	if err := w.uint(st.N1, "n1"); err != nil {
		return err
	}
	if err := w.uint(st.N2, "n2"); err != nil {
		return err
	}
	if err := w.uint(len(st.Pairs), "pair count"); err != nil {
		return err
	}
	if err := writeU32s(w, 2*len(st.Pairs), func(i int) uint32 {
		if i%2 == 0 {
			return uint32(st.Pairs[i/2].Left)
		}
		return uint32(st.Pairs[i/2].Right)
	}); err != nil {
		return err
	}
	if err := w.uint(st.Seeds, "seed count"); err != nil {
		return err
	}
	if err := w.uint(st.Sweeps, "sweep count"); err != nil {
		return err
	}
	if err := w.uint(st.NextBucket, "bucket position"); err != nil {
		return err
	}
	hybrid := byte(0)
	if st.HybridFrontier {
		hybrid = 1
	}
	if err := w.byte(hybrid); err != nil {
		return err
	}
	if err := w.uint(st.PhasesDropped, "evicted phase count"); err != nil {
		return err
	}
	if err := w.uint(st.DroppedMatched, "evicted match count"); err != nil {
		return err
	}

	if err := w.uint(len(st.Phases), "phase count"); err != nil {
		return err
	}
	for _, ph := range st.Phases {
		for _, f := range []struct {
			v    int
			what string
		}{
			{ph.Iteration, "phase iteration"},
			{ph.MinDegree, "phase min degree"},
			{ph.Matched, "phase matched"},
			{ph.TotalL, "phase total"},
		} {
			if err := w.uint(f.v, f.what); err != nil {
				return err
			}
		}
	}

	if st.Frontier == nil {
		return w.byte(0)
	}
	if err := w.byte(1); err != nil {
		return err
	}
	fr := st.Frontier
	if fr.Rescored < 0 {
		return fmt.Errorf("snapshot: encode: negative frontier work counter %d", fr.Rescored)
	}
	if err := w.uvarint(uint64(fr.Rescored)); err != nil {
		return err
	}
	for _, side := range []*core.FrontierSideSnapshot{&fr.Left, &fr.Right} {
		if len(side.ProposalNode) != len(side.ProposalScore) {
			return fmt.Errorf("snapshot: encode: frontier cache slices disagree (%d nodes, %d scores)",
				len(side.ProposalNode), len(side.ProposalScore))
		}
		if err := w.uint(len(side.ProposalNode), "frontier cache length"); err != nil {
			return err
		}
		if err := writeU32s(w, len(side.ProposalNode), func(i int) uint32 {
			return uint32(side.ProposalNode[i])
		}); err != nil {
			return err
		}
		for _, sc := range side.ProposalScore {
			if sc < 0 {
				return fmt.Errorf("snapshot: encode: negative proposal score %d", sc)
			}
		}
		if err := writeU32s(w, len(side.ProposalScore), func(i int) uint32 {
			return uint32(side.ProposalScore[i])
		}); err != nil {
			return err
		}
		if err := w.uint(len(side.Dirty), "frontier worklist length"); err != nil {
			return err
		}
		if err := writeU32s(w, len(side.Dirty), func(i int) uint32 {
			return uint32(side.Dirty[i])
		}); err != nil {
			return err
		}
	}
	return nil
}

// decodeState reads the session-state payload of the given format version.
// Structural bounds are checked here; core.RestoreSession re-checks every
// semantic invariant against the graphs before the state is used.
func decodeState(r *reader, version uint64) (*core.SessionState, error) {
	st := &core.SessionState{}
	for _, f := range optionFields(&st.Opts) {
		v, err := r.uint(f.what)
		if err != nil {
			return nil, err
		}
		*f.v = v
	}
	disabled, err := r.byte("bucketing flag")
	if err != nil {
		return nil, err
	}
	if disabled > 1 {
		return nil, fmt.Errorf("snapshot: decode bucketing flag: bad value %d", disabled)
	}
	st.Opts.DisableBucketing = disabled == 1

	if st.N1, err = r.uint("n1"); err != nil {
		return nil, err
	}
	if st.N2, err = r.uint("n2"); err != nil {
		return nil, err
	}
	nPairs, err := r.uint("pair count")
	if err != nil {
		return nil, err
	}
	flat, err := appendU32s[graph.NodeID](r, 2*uint64(nPairs), "pairs")
	if err != nil {
		return nil, err
	}
	if nPairs > 0 {
		st.Pairs = make([]graph.Pair, nPairs)
		for i := range st.Pairs {
			st.Pairs[i] = graph.Pair{Left: flat[2*i], Right: flat[2*i+1]}
		}
	}
	if st.Seeds, err = r.uint("seed count"); err != nil {
		return nil, err
	}
	if st.Sweeps, err = r.uint("sweep count"); err != nil {
		return nil, err
	}
	if st.NextBucket, err = r.uint("bucket position"); err != nil {
		return nil, err
	}
	if version >= 2 {
		// Version 1 predates the hybrid engine and the bounded phase log;
		// its streams decode with these fields zero, which is exactly the
		// state every version-1 session was in.
		hybrid, err := r.byte("hybrid regime flag")
		if err != nil {
			return nil, err
		}
		if hybrid > 1 {
			return nil, fmt.Errorf("snapshot: decode hybrid regime flag: bad value %d", hybrid)
		}
		st.HybridFrontier = hybrid == 1
		if st.PhasesDropped, err = r.uint("evicted phase count"); err != nil {
			return nil, err
		}
		if st.DroppedMatched, err = r.uint("evicted match count"); err != nil {
			return nil, err
		}
	}

	nPhases, err := r.uint("phase count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nPhases; i++ {
		var ph core.PhaseStat
		for _, f := range []struct {
			dst  *int
			what string
		}{
			{&ph.Iteration, "phase iteration"},
			{&ph.MinDegree, "phase min degree"},
			{&ph.Matched, "phase matched"},
			{&ph.TotalL, "phase total"},
		} {
			if *f.dst, err = r.uint(f.what); err != nil {
				return nil, err
			}
		}
		st.Phases = append(st.Phases, ph)
	}

	hasFrontier, err := r.byte("frontier flag")
	if err != nil {
		return nil, err
	}
	switch hasFrontier {
	case 0:
		return st, nil
	case 1:
	default:
		return nil, fmt.Errorf("snapshot: decode frontier flag: bad value %d", hasFrontier)
	}
	fr := &core.FrontierSnapshot{}
	rescored, err := r.uvarint("frontier work counter")
	if err != nil {
		return nil, err
	}
	if rescored > math.MaxInt64 {
		return nil, fmt.Errorf("snapshot: decode frontier work counter: value %d out of range", rescored)
	}
	fr.Rescored = int64(rescored)
	for _, side := range []*core.FrontierSideSnapshot{&fr.Left, &fr.Right} {
		cacheLen, err := r.uint("frontier cache length")
		if err != nil {
			return nil, err
		}
		if side.ProposalNode, err = appendU32s[graph.NodeID](r, uint64(cacheLen), "frontier proposals"); err != nil {
			return nil, err
		}
		scores, err := appendU32s[uint32](r, uint64(cacheLen), "frontier scores")
		if err != nil {
			return nil, err
		}
		if cacheLen > 0 {
			side.ProposalScore = make([]int32, cacheLen)
			for i, v := range scores {
				if v > math.MaxInt32 {
					return nil, fmt.Errorf("snapshot: decode frontier scores: score %d out of range", v)
				}
				side.ProposalScore[i] = int32(v)
			}
		}
		dirtyLen, err := r.uint("frontier worklist length")
		if err != nil {
			return nil, err
		}
		if side.Dirty, err = appendU32s[graph.NodeID](r, uint64(dirtyLen), "frontier worklist"); err != nil {
			return nil, err
		}
	}
	st.Frontier = fr
	return st, nil
}
