package snapshot

import (
	"fmt"
	"io"
	"math"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/graph"
)

// Range-manifest records: the global half of a per-node-range checkpoint.
// The per-range shards are ordinary kindState / kindDelta records encoded
// with the existing codec; the manifest carries the shard geometry, the
// whole-checkpoint scalars, the bounded phase log, and the frontier
// worklists — everything core.MergeStateRanges needs to prove a shard set
// belongs together and reassemble it. Stores write the manifest last: its
// presence is the commit point of a ranged checkpoint.

// WriteManifest writes a range manifest as a framed record.
func WriteManifest(w io.Writer, man *core.RangeManifest) error {
	return write(w, kindManifest, func(ew *writer) error { return encodeManifest(ew, man) })
}

// ReadManifest reads a range manifest written by WriteManifest.
func ReadManifest(r io.Reader) (*core.RangeManifest, error) {
	var man *core.RangeManifest
	err := read(r, kindManifest, func(er *reader, _ uint64) error {
		var derr error
		man, derr = decodeManifest(er)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return man, nil
}

// encodeManifest writes the manifest payload.
func encodeManifest(w *writer, man *core.RangeManifest) error {
	for _, f := range []struct {
		v    int
		what string
	}{
		{man.Ranges, "range count"},
		{man.NLevels, "frontier levels"},
		{man.N1, "n1"},
		{man.N2, "n2"},
		{man.TotalPairs, "pair total"},
		{man.Seeds, "seed count"},
		{man.Sweeps, "sweep count"},
		{man.NextBucket, "bucket position"},
		{man.PhasesDropped, "evicted phase count"},
		{man.DroppedMatched, "evicted match count"},
	} {
		if err := w.uint(f.v, f.what); err != nil {
			return err
		}
	}
	hybrid := byte(0)
	if man.HybridFrontier {
		hybrid = 1
	}
	if err := w.byte(hybrid); err != nil {
		return err
	}

	if err := w.uint(len(man.Phases), "phase count"); err != nil {
		return err
	}
	for _, ph := range man.Phases {
		for _, f := range []struct {
			v    int
			what string
		}{
			{ph.Iteration, "phase iteration"},
			{ph.MinDegree, "phase min degree"},
			{ph.Matched, "phase matched"},
			{ph.TotalL, "phase total"},
		} {
			if err := w.uint(f.v, f.what); err != nil {
				return err
			}
		}
	}

	if man.Frontier == nil {
		return w.byte(0)
	}
	if err := w.byte(1); err != nil {
		return err
	}
	fr := man.Frontier
	if fr.Rescored < 0 {
		return fmt.Errorf("snapshot: encode: negative frontier work counter %d", fr.Rescored)
	}
	if err := w.uvarint(uint64(fr.Rescored)); err != nil {
		return err
	}
	for _, dirty := range [][]graph.NodeID{fr.DirtyLeft, fr.DirtyRight} {
		if err := w.uint(len(dirty), "manifest worklist length"); err != nil {
			return err
		}
		if err := writeU32s(w, len(dirty), func(i int) uint32 { return uint32(dirty[i]) }); err != nil {
			return err
		}
	}
	return nil
}

// decodeManifest reads the manifest payload. Structural bounds are checked
// here; core.MergeStateRanges proves the geometry against the shard set
// before any of it is trusted.
func decodeManifest(r *reader) (*core.RangeManifest, error) {
	man := &core.RangeManifest{}
	var err error
	for _, f := range []struct {
		dst  *int
		what string
	}{
		{&man.Ranges, "range count"},
		{&man.NLevels, "frontier levels"},
		{&man.N1, "n1"},
		{&man.N2, "n2"},
		{&man.TotalPairs, "pair total"},
		{&man.Seeds, "seed count"},
		{&man.Sweeps, "sweep count"},
		{&man.NextBucket, "bucket position"},
		{&man.PhasesDropped, "evicted phase count"},
		{&man.DroppedMatched, "evicted match count"},
	} {
		if *f.dst, err = r.uint(f.what); err != nil {
			return nil, err
		}
	}
	hybrid, err := r.byte("hybrid regime flag")
	if err != nil {
		return nil, err
	}
	if hybrid > 1 {
		return nil, fmt.Errorf("snapshot: decode hybrid regime flag: bad value %d", hybrid)
	}
	man.HybridFrontier = hybrid == 1

	nPhases, err := r.uint("phase count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nPhases; i++ {
		var ph core.PhaseStat
		for _, f := range []struct {
			dst  *int
			what string
		}{
			{&ph.Iteration, "phase iteration"},
			{&ph.MinDegree, "phase min degree"},
			{&ph.Matched, "phase matched"},
			{&ph.TotalL, "phase total"},
		} {
			if *f.dst, err = r.uint(f.what); err != nil {
				return nil, err
			}
		}
		man.Phases = append(man.Phases, ph)
	}

	hasFrontier, err := r.byte("frontier flag")
	if err != nil {
		return nil, err
	}
	switch hasFrontier {
	case 0:
		return man, nil
	case 1:
	default:
		return nil, fmt.Errorf("snapshot: decode frontier flag: bad value %d", hasFrontier)
	}
	fr := &core.ManifestFrontier{}
	rescored, err := r.uvarint("frontier work counter")
	if err != nil {
		return nil, err
	}
	if rescored > math.MaxInt64 {
		return nil, fmt.Errorf("snapshot: decode frontier work counter: value %d out of range", rescored)
	}
	fr.Rescored = int64(rescored)
	for _, dst := range []*[]graph.NodeID{&fr.DirtyLeft, &fr.DirtyRight} {
		dirtyLen, err := r.uint("manifest worklist length")
		if err != nil {
			return nil, err
		}
		if *dst, err = appendU32s[graph.NodeID](r, uint64(dirtyLen), "manifest worklist"); err != nil {
			return nil, err
		}
	}
	man.Frontier = fr
	return man, nil
}
