package snapshot

import (
	"bytes"
	"context"
	"testing"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

// FuzzSnapshotRoundTrip drives the codec over random sessions — random
// graphs × option combinations × partial runs stopped at a random bucket
// boundary — and pins, per input:
//
//   - decode(encode(s)) == s, both as values (deep equality of graphs and
//     state) and as bytes (the encoding is canonical, so re-encoding the
//     decoded value is byte-identical);
//   - the restored session finishes bit-identically to the original;
//   - corrupting or truncating the stream at a seed-derived position
//     returns an error — never a panic, never a silently-wrong snapshot.
//
// Run the smoke corpus with the normal test suite, or explore with
//
//	go test -fuzz=FuzzSnapshotRoundTrip -fuzztime=20s ./internal/snapshot
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(60), uint16(0), uint8(0))
	f.Add(uint64(2), uint16(140), uint16(0x35), uint8(3))
	f.Add(uint64(3), uint16(250), uint16(0x1ff), uint8(7))
	f.Add(uint64(77), uint16(180), uint16(0x0aa), uint8(1))
	f.Add(uint64(1234), uint16(90), uint16(0x155), uint8(12))

	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16, cfg uint16, stopRaw uint8) {
		// Derive a small instance the way FuzzEngineEquivalence does: PA
		// parent, independent edge-sampled copies, Bernoulli seed reveal.
		n := 20 + int(nRaw)%230
		r := xrand.New(seed)
		g := gen.PreferentialAttachment(r, n, 3+int(seed%3))
		g1, g2 := sampling.IndependentCopies(r, g, 0.6, 0.8)
		seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.15)

		opts := core.DefaultOptions()
		opts.Threshold = 1 + int(cfg&0x3)
		opts.Iterations = 1 + int((cfg>>2)&0x1)
		opts.MinMargin = int((cfg >> 3) & 0x1)
		opts.MinBucketExp = int((cfg >> 4) & 0x1)
		opts.DisableBucketing = cfg&0x20 != 0
		if cfg&0x40 != 0 {
			opts.Ties = core.TieLowestID
		}
		if cfg&0x80 != 0 {
			opts.Scoring = core.ScoreAdamicAdar
		}
		switch (cfg >> 8) % 4 {
		case 1:
			opts.Engine = core.EngineSequential
		case 2:
			opts.Engine = core.EngineParallel
		case 3:
			opts.Engine = core.EngineFrontier
		} // case 0 keeps the default (hybrid)

		s, err := core.NewSession(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		totalBuckets := opts.Iterations * len(opts.BucketSchedule(g1, g2))
		stop := int(stopRaw) % (totalBuckets + 1) // 0 = snapshot before any bucket
		if stop > 0 {
			ctx, cancel := context.WithCancel(context.Background())
			buckets := 0
			s.SetProgress(func(core.PhaseEvent) {
				buckets++
				if buckets == stop {
					cancel()
				}
			})
			s.RunContext(ctx, opts.Iterations)
			s.SetProgress(nil)
			cancel()
		}
		st := s.ExportState()

		var buf bytes.Buffer
		if err := Write(&buf, g1, g2, st); err != nil {
			t.Fatalf("encode: %v", err)
		}
		data := buf.Bytes()

		rg1, rg2, rst, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if err := rg1.Validate(); err != nil {
			t.Fatalf("decoded g1: %v", err)
		}
		if err := rg2.Validate(); err != nil {
			t.Fatalf("decoded g2: %v", err)
		}
		if !stateEqual(st, rst) {
			t.Fatal("decode(encode(state)) != state")
		}
		var again bytes.Buffer
		if err := Write(&again, rg1, rg2, rst); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(data, again.Bytes()) {
			t.Fatal("encoding is not canonical: re-encoded bytes differ")
		}

		// The restored session must finish bit-identically to the original.
		restored, err := core.RestoreSession(rg1, rg2, rst)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		finish := func(s *core.Session) *core.Result {
			s.RunContext(context.Background(), opts.Iterations-s.Sweeps())
			return s.Result()
		}
		want, got := finish(s), finish(restored)
		if len(want.Pairs) != len(got.Pairs) || len(want.Phases) != len(got.Phases) {
			t.Fatalf("restored run diverged: %d pairs / %d phases, want %d / %d",
				len(got.Pairs), len(got.Phases), len(want.Pairs), len(want.Phases))
		}
		for i := range want.Pairs {
			if want.Pairs[i] != got.Pairs[i] {
				t.Fatalf("restored run diverged at pair %d: %v vs %v", i, got.Pairs[i], want.Pairs[i])
			}
		}
		for i := range want.Phases {
			if want.Phases[i] != got.Phases[i] {
				t.Fatalf("restored run diverged at phase %d", i)
			}
		}

		// Corruption and truncation at seed-derived positions must error,
		// never panic. A CRC trailer guards the whole stream, so any flip is
		// detectable; flips in length fields additionally exercise the
		// bounded-allocation paths.
		cut := int(seed) % len(data)
		if _, _, _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		for delta := uint64(0); delta < 3; delta++ {
			pos := int((seed/7 + delta*2654435761) % uint64(len(data)))
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << (seed % 8)
			if mut[pos] == data[pos] {
				mut[pos] ^= 1
			}
			if _, _, _, err := Read(bytes.NewReader(mut)); err == nil {
				t.Fatalf("byte flip at %d accepted", pos)
			}
		}
	})
}
