package snapshot

import (
	"fmt"
	"io"
	"math"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/graph"
)

// Delta records share the stream framing of every other snapshot kind —
// magic, version, kind byte, CRC32 trailer — and the same canonicality and
// defensive-decode rules: one byte stream per value (cache-edit indices are
// gap-encoded, so ascending order is structural), allocations bounded by
// bytes actually read, and corrupt or truncated input errors out, never
// panics. A delta is O(churn since the last checkpoint) on the wire, which
// is what makes per-sweep checkpoints cheap at paper scale; core.ApplyDelta
// replays it onto the base state bit-identically.

// WriteDelta writes a delta record (core.DiffStates output) as a framed
// stream.
func WriteDelta(w io.Writer, d *core.StateDelta) error {
	return write(w, kindDelta, func(ew *writer) error { return encodeDelta(ew, d) })
}

// ReadDelta reads a delta record written by WriteDelta.
func ReadDelta(r io.Reader) (*core.StateDelta, error) {
	var d *core.StateDelta
	err := read(r, kindDelta, func(er *reader, v uint64) error {
		var derr error
		d, derr = decodeDelta(er, v)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// deltaPositions flattens the scalar position fields into wire order, shared
// by encode and decode so the two cannot drift.
func deltaPositions(d *core.StateDelta) []struct {
	v    *int
	what string
} {
	return []struct {
		v    *int
		what string
	}{
		{&d.BasePairs, "base pair count"},
		{&d.BasePhases, "base phase count"},
		{&d.BaseSweeps, "base sweep count"},
		{&d.BaseNextBucket, "base bucket position"},
		{&d.Sweeps, "sweep count"},
		{&d.NextBucket, "bucket position"},
	}
}

// deltaWindowFields flattens the version-2 phase-window scalars into wire
// order, shared by encode and decode so the two cannot drift.
func deltaWindowFields(d *core.StateDelta) []struct {
	v    *int
	what string
} {
	return []struct {
		v    *int
		what string
	}{
		{&d.BasePhasesDropped, "base evicted phase count"},
		{&d.PhasesDropped, "evicted phase count"},
		{&d.DroppedMatched, "evicted match count"},
	}
}

func encodeDelta(w *writer, d *core.StateDelta) error {
	for _, f := range deltaPositions(d) {
		if err := w.uint(*f.v, f.what); err != nil {
			return err
		}
	}
	for _, f := range deltaWindowFields(d) {
		if err := w.uint(*f.v, f.what); err != nil {
			return err
		}
	}
	hybrid := byte(0)
	if d.HybridFrontier {
		hybrid = 1
	}
	if err := w.byte(hybrid); err != nil {
		return err
	}
	if err := w.uint(len(d.NewPairs), "new pair count"); err != nil {
		return err
	}
	if err := writeU32s(w, 2*len(d.NewPairs), func(i int) uint32 {
		if i%2 == 0 {
			return uint32(d.NewPairs[i/2].Left)
		}
		return uint32(d.NewPairs[i/2].Right)
	}); err != nil {
		return err
	}
	if err := w.uint(len(d.NewPhases), "new phase count"); err != nil {
		return err
	}
	for _, ph := range d.NewPhases {
		for _, f := range []struct {
			v    int
			what string
		}{
			{ph.Iteration, "phase iteration"},
			{ph.MinDegree, "phase min degree"},
			{ph.Matched, "phase matched"},
			{ph.TotalL, "phase total"},
		} {
			if err := w.uint(f.v, f.what); err != nil {
				return err
			}
		}
	}

	if d.Frontier == nil {
		return w.byte(0)
	}
	if err := w.byte(1); err != nil {
		return err
	}
	fd := d.Frontier
	if fd.Rescored < 0 {
		return fmt.Errorf("snapshot: encode: negative frontier work counter %d", fd.Rescored)
	}
	if err := w.uvarint(uint64(fd.Rescored)); err != nil {
		return err
	}
	for _, side := range []*core.FrontierSideDelta{&fd.Left, &fd.Right} {
		if len(side.Index) != len(side.Node) || len(side.Index) != len(side.Score) {
			return fmt.Errorf("snapshot: encode: delta edit slices disagree (%d indices, %d nodes, %d scores)",
				len(side.Index), len(side.Node), len(side.Score))
		}
		if err := w.uint(len(side.Index), "cache edit count"); err != nil {
			return err
		}
		// Indices go out as gaps: the first as-is, each later one as the
		// distance to its predecessor. Ascending order is therefore a
		// structural property of the stream, and typical (clustered) edit
		// sets cost one or two bytes per index.
		prev := -1
		for _, idx := range side.Index {
			if idx <= prev {
				return fmt.Errorf("snapshot: encode: cache edit indices not ascending (%d after %d)", idx, prev)
			}
			if idx < 0 || idx > math.MaxInt32 {
				return fmt.Errorf("snapshot: encode: cache edit index %d out of range", idx)
			}
			gap := idx - prev
			if prev < 0 {
				gap = idx
			}
			if err := w.uvarint(uint64(gap)); err != nil {
				return err
			}
			prev = idx
		}
		if err := writeU32s(w, len(side.Node), func(i int) uint32 {
			return uint32(side.Node[i])
		}); err != nil {
			return err
		}
		for _, sc := range side.Score {
			if sc < 0 {
				return fmt.Errorf("snapshot: encode: negative proposal score %d", sc)
			}
		}
		if err := writeU32s(w, len(side.Score), func(i int) uint32 {
			return uint32(side.Score[i])
		}); err != nil {
			return err
		}
		if err := w.uint(len(side.Dirty), "delta worklist length"); err != nil {
			return err
		}
		if err := writeU32s(w, len(side.Dirty), func(i int) uint32 {
			return uint32(side.Dirty[i])
		}); err != nil {
			return err
		}
	}
	return nil
}

func decodeDelta(r *reader, version uint64) (*core.StateDelta, error) {
	d := &core.StateDelta{}
	for _, f := range deltaPositions(d) {
		v, err := r.uint(f.what)
		if err != nil {
			return nil, err
		}
		*f.v = v
	}
	if version >= 2 {
		// Version 1 predates the bounded phase log and the hybrid engine;
		// see decodeState.
		for _, f := range deltaWindowFields(d) {
			v, err := r.uint(f.what)
			if err != nil {
				return nil, err
			}
			*f.v = v
		}
		hybrid, err := r.byte("delta hybrid regime flag")
		if err != nil {
			return nil, err
		}
		if hybrid > 1 {
			return nil, fmt.Errorf("snapshot: decode delta hybrid regime flag: bad value %d", hybrid)
		}
		d.HybridFrontier = hybrid == 1
	}
	nPairs, err := r.uint("new pair count")
	if err != nil {
		return nil, err
	}
	flat, err := appendU32s[graph.NodeID](r, 2*uint64(nPairs), "new pairs")
	if err != nil {
		return nil, err
	}
	if nPairs > 0 {
		d.NewPairs = make([]graph.Pair, nPairs)
		for i := range d.NewPairs {
			d.NewPairs[i] = graph.Pair{Left: flat[2*i], Right: flat[2*i+1]}
		}
	}
	nPhases, err := r.uint("new phase count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nPhases; i++ {
		var ph core.PhaseStat
		for _, f := range []struct {
			dst  *int
			what string
		}{
			{&ph.Iteration, "phase iteration"},
			{&ph.MinDegree, "phase min degree"},
			{&ph.Matched, "phase matched"},
			{&ph.TotalL, "phase total"},
		} {
			if *f.dst, err = r.uint(f.what); err != nil {
				return nil, err
			}
		}
		d.NewPhases = append(d.NewPhases, ph)
	}

	hasFrontier, err := r.byte("delta frontier flag")
	if err != nil {
		return nil, err
	}
	switch hasFrontier {
	case 0:
		return d, nil
	case 1:
	default:
		return nil, fmt.Errorf("snapshot: decode delta frontier flag: bad value %d", hasFrontier)
	}
	fd := &core.FrontierDelta{}
	rescored, err := r.uvarint("frontier work counter")
	if err != nil {
		return nil, err
	}
	if rescored > math.MaxInt64 {
		return nil, fmt.Errorf("snapshot: decode frontier work counter: value %d out of range", rescored)
	}
	fd.Rescored = int64(rescored)
	for _, side := range []*core.FrontierSideDelta{&fd.Left, &fd.Right} {
		nEdits, err := r.uint("cache edit count")
		if err != nil {
			return nil, err
		}
		prev := -1
		for i := 0; i < nEdits; i++ {
			gap, err := r.uvarint("cache edit gap")
			if err != nil {
				return nil, err
			}
			if gap > math.MaxInt32 {
				return nil, fmt.Errorf("snapshot: decode cache edit gap: gap %d out of range at edit %d", gap, i)
			}
			sum := gap
			if prev >= 0 {
				if gap == 0 {
					return nil, fmt.Errorf("snapshot: decode cache edit gap: zero gap at edit %d", i)
				}
				sum += uint64(prev)
			}
			// Indices fit int32 (the encoder enforces it), so the sum cannot
			// wrap and decode agrees with encode on every platform.
			if sum > math.MaxInt32 {
				return nil, fmt.Errorf("snapshot: decode cache edit gap: index overflow at edit %d", i)
			}
			idx := int(sum)
			side.Index = append(side.Index, idx)
			prev = idx
		}
		if side.Node, err = appendU32s[graph.NodeID](r, uint64(nEdits), "cache edit nodes"); err != nil {
			return nil, err
		}
		scores, err := appendU32s[uint32](r, uint64(nEdits), "cache edit scores")
		if err != nil {
			return nil, err
		}
		if nEdits > 0 {
			side.Score = make([]int32, nEdits)
			for i, v := range scores {
				if v > math.MaxInt32 {
					return nil, fmt.Errorf("snapshot: decode cache edit scores: score %d out of range", v)
				}
				side.Score[i] = int32(v)
			}
		}
		dirtyLen, err := r.uint("delta worklist length")
		if err != nil {
			return nil, err
		}
		if side.Dirty, err = appendU32s[graph.NodeID](r, uint64(dirtyLen), "delta worklist"); err != nil {
			return nil, err
		}
	}
	d.Frontier = fd
	return d, nil
}
