package snapshot

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

// FuzzDeltaRoundTrip drives the delta codec over random checkpoint pairs —
// random graphs × option combinations, a base exported at one random bucket
// boundary and a target at a later one (with an optional incremental seed in
// between) — and pins, per input:
//
//   - decode(encode(d)) == d, on values and (canonically) on bytes;
//   - ApplyDelta(base, decode(encode(d))) reproduces the target state
//     exactly, so restore from (full + deltas) equals restore from a
//     monolithic snapshot;
//   - applying the delta onto the wrong base errors;
//   - corrupting or truncating the stream at seed-derived positions returns
//     an error — never a panic.
//
// Run the smoke corpus with the normal test suite, or explore with
//
//	go test -fuzz=FuzzDeltaRoundTrip -fuzztime=20s ./internal/snapshot
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(60), uint16(0), uint8(0), uint8(2))
	f.Add(uint64(2), uint16(140), uint16(0x35), uint8(1), uint8(4))
	f.Add(uint64(3), uint16(250), uint16(0x1ff), uint8(3), uint8(1))
	f.Add(uint64(77), uint16(180), uint16(0x0aa), uint8(0), uint8(7))
	f.Add(uint64(1234), uint16(90), uint16(0x155), uint8(5), uint8(3))

	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16, cfg uint16, stopRaw uint8, gapRaw uint8) {
		// Derive a small instance the way FuzzSnapshotRoundTrip does.
		n := 20 + int(nRaw)%230
		r := xrand.New(seed)
		g := gen.PreferentialAttachment(r, n, 3+int(seed%3))
		g1, g2 := sampling.IndependentCopies(r, g, 0.6, 0.8)
		seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.15)

		opts := core.DefaultOptions()
		opts.Threshold = 1 + int(cfg&0x3)
		opts.Iterations = 1 + int((cfg>>2)&0x1)
		opts.MinMargin = int((cfg >> 3) & 0x1)
		opts.MinBucketExp = int((cfg >> 4) & 0x1)
		opts.DisableBucketing = cfg&0x20 != 0
		if cfg&0x40 != 0 {
			opts.Ties = core.TieLowestID
		}
		if cfg&0x80 != 0 {
			opts.Scoring = core.ScoreAdamicAdar
		}
		switch (cfg >> 8) % 4 {
		case 1:
			opts.Engine = core.EngineSequential
		case 2:
			opts.Engine = core.EngineParallel
		case 3:
			opts.Engine = core.EngineFrontier
		} // case 0 keeps the default (hybrid)

		s, err := core.NewSession(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		totalBuckets := opts.Iterations * len(opts.BucketSchedule(g1, g2))
		stop := int(stopRaw) % (totalBuckets + 1) // base checkpoint position
		gap := 1 + int(gapRaw)%(totalBuckets+1)   // buckets between base and target
		var base, target *core.SessionState
		buckets := 0
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		s.SetProgress(func(core.PhaseEvent) {
			buckets++
			if buckets == stop {
				base = s.ExportState()
			}
			if buckets == stop+gap {
				cancel()
			}
		})
		if stop == 0 {
			base = s.ExportState()
		}
		s.RunContext(ctx, opts.Iterations+1)
		s.SetProgress(nil)
		if base == nil {
			base = s.ExportState() // run ended before the stop position
		}
		// An incremental seed between checkpoints, when one is free.
		if cfg&0x10 != 0 {
			for v := 0; v < n; v++ {
				p := graph.Pair{Left: graph.NodeID(v), Right: graph.NodeID(v)}
				if s.AddSeeds([]graph.Pair{p}) == nil {
					break
				}
			}
		}
		target = s.ExportState()

		d, err := core.DiffStates(base, target)
		if errors.Is(err, core.ErrNotDiffable) && base.HybridFrontier != target.HybridFrontier {
			// The hybrid regime handoff landed between the checkpoints; the
			// checkpointer takes a full snapshot there instead of a delta.
			return
		}
		if err != nil {
			t.Fatalf("diff: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteDelta(&buf, d); err != nil {
			t.Fatalf("encode: %v", err)
		}
		data := buf.Bytes()

		rd, err := ReadDelta(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if !deltaEqual(d, rd) {
			t.Fatal("decode(encode(delta)) != delta")
		}
		var again bytes.Buffer
		if err := WriteDelta(&again, rd); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(data, again.Bytes()) {
			t.Fatal("delta encoding is not canonical: re-encoded bytes differ")
		}

		replayed, err := core.ApplyDelta(base, rd)
		if err != nil {
			t.Fatalf("apply decoded delta: %v", err)
		}
		if !stateEqual(target, replayed) {
			t.Fatal("decoded delta replays to a different state")
		}
		if _, err := core.RestoreSession(g1, g2, replayed); err != nil {
			t.Fatalf("restore of replayed state: %v", err)
		}
		// The wrong base is refused (unless base and target share a position,
		// i.e. the delta is empty and the bases are interchangeable).
		if target.Sweeps != base.Sweeps || target.NextBucket != base.NextBucket ||
			len(target.Pairs) != len(base.Pairs) || len(target.Phases) != len(base.Phases) {
			if _, err := core.ApplyDelta(target, rd); err == nil {
				t.Fatal("delta applied onto the wrong base")
			}
		}

		// Corruption and truncation at seed-derived positions must error,
		// never panic.
		cut := int(seed) % len(data)
		if _, err := ReadDelta(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		for delta := uint64(0); delta < 3; delta++ {
			pos := int((seed/7 + delta*2654435761) % uint64(len(data)))
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << (seed % 8)
			if mut[pos] == data[pos] {
				mut[pos] ^= 1
			}
			if _, err := ReadDelta(bytes.NewReader(mut)); err == nil {
				t.Fatalf("byte flip at %d accepted", pos)
			}
		}
	})
}
