package snapshot

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/graph"
)

// deltaEqual compares delta records treating nil and empty slices as equal.
func deltaEqual(a, b *core.StateDelta) bool {
	norm := func(d core.StateDelta) core.StateDelta {
		if len(d.NewPairs) == 0 {
			d.NewPairs = nil
		}
		if len(d.NewPhases) == 0 {
			d.NewPhases = nil
		}
		if d.Frontier != nil {
			fd := *d.Frontier
			for _, side := range []*core.FrontierSideDelta{&fd.Left, &fd.Right} {
				if len(side.Index) == 0 {
					side.Index = nil
				}
				if len(side.Node) == 0 {
					side.Node = nil
				}
				if len(side.Score) == 0 {
					side.Score = nil
				}
				if len(side.Dirty) == 0 {
					side.Dirty = nil
				}
			}
			d.Frontier = &fd
		}
		return d
	}
	return reflect.DeepEqual(norm(*a), norm(*b))
}

// TestDeltaRoundTrip drives the delta codec over real per-sweep churn on
// every engine: decode(encode(d)) == d on values and bytes, and the decoded
// delta replays onto the base to the exact target state.
func TestDeltaRoundTrip(t *testing.T) {
	for _, engine := range []core.Engine{core.EngineSequential, core.EngineParallel, core.EngineFrontier} {
		t.Run(engine.String(), func(t *testing.T) {
			opts := core.DefaultOptions()
			opts.Engine = engine
			_, _, s := testSession(t, 42, 300, opts, 0)
			base := s.ExportState()
			for sweep := 0; sweep < 3; sweep++ {
				s.Run(1)
				cur := s.ExportState()
				d, err := core.DiffStates(base, cur)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := WriteDelta(&buf, d); err != nil {
					t.Fatalf("encode: %v", err)
				}
				data := buf.Bytes()
				rd, err := ReadDelta(bytes.NewReader(data))
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if !deltaEqual(d, rd) {
					t.Fatal("decode(encode(delta)) != delta")
				}
				var again bytes.Buffer
				if err := WriteDelta(&again, rd); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(data, again.Bytes()) {
					t.Fatal("delta encoding is not canonical")
				}
				replayed, err := core.ApplyDelta(base, rd)
				if err != nil {
					t.Fatalf("apply decoded delta: %v", err)
				}
				if !stateEqual(cur, replayed) {
					t.Fatal("decoded delta replays to a different state")
				}
				base = cur
			}
		})
	}
}

// TestDeltaKindMismatch pins that delta records and state snapshots cannot
// be confused for one another: each reader refuses the other's stream.
func TestDeltaKindMismatch(t *testing.T) {
	opts := core.DefaultOptions()
	_, _, s := testSession(t, 7, 150, opts, 0)
	base := s.ExportState()
	s.Run(1)
	d, err := core.DiffStates(base, s.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var db, sb bytes.Buffer
	if err := WriteDelta(&db, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteState(&sb, base); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadState(bytes.NewReader(db.Bytes())); err == nil {
		t.Fatal("ReadState accepted a delta record")
	}
	if _, err := ReadDelta(bytes.NewReader(sb.Bytes())); err == nil {
		t.Fatal("ReadDelta accepted a state snapshot")
	}
}

// TestDeltaEncodeRejectsMalformed pins encoder-side validation: deltas that
// could not have come from DiffStates are refused before a byte is framed
// into a stream a decoder would then have to distrust.
func TestDeltaEncodeRejectsMalformed(t *testing.T) {
	mk := func() *core.StateDelta {
		return &core.StateDelta{
			Frontier: &core.FrontierDelta{
				Left: core.FrontierSideDelta{Index: []int{3, 7}, Node: []graph.NodeID{1, 2}, Score: []int32{4, 5}},
			},
		}
	}

	d := mk()
	d.Frontier.Left.Index = []int{7, 3}
	if err := WriteDelta(new(bytes.Buffer), d); err == nil {
		t.Fatal("non-ascending indices encoded")
	}

	d = mk()
	d.Frontier.Left.Node = d.Frontier.Left.Node[:1]
	if err := WriteDelta(new(bytes.Buffer), d); err == nil {
		t.Fatal("mismatched edit slices encoded")
	}

	d = mk()
	d.Frontier.Left.Score[0] = -1
	if err := WriteDelta(new(bytes.Buffer), d); err == nil {
		t.Fatal("negative score encoded")
	}

	d = mk()
	d.Frontier.Rescored = -1
	if err := WriteDelta(new(bytes.Buffer), d); err == nil {
		t.Fatal("negative work counter encoded")
	}

	d = mk()
	d.BasePairs = -1
	if err := WriteDelta(new(bytes.Buffer), d); err == nil {
		t.Fatal("negative base position encoded")
	}
}
