package snapshot

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

// testSession builds a partially-run session over a small instance.
func testSession(t testing.TB, seed uint64, n int, opts core.Options, stopAfter int) (*graph.Graph, *graph.Graph, *core.Session) {
	t.Helper()
	r := xrand.New(seed)
	g := gen.PreferentialAttachment(r, n, 4)
	g1, g2 := sampling.IndependentCopies(r, g, 0.7, 0.8)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.2)
	s, err := core.NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stopAfter > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		buckets := 0
		s.SetProgress(func(core.PhaseEvent) {
			buckets++
			if buckets == stopAfter {
				cancel()
			}
		})
		s.RunContext(ctx, opts.Iterations)
		s.SetProgress(nil)
	}
	return g1, g2, s
}

// stateEqual compares states treating nil and empty slices as equal (the
// codec canonicalizes empties to nil).
func stateEqual(a, b *core.SessionState) bool {
	norm := func(st core.SessionState) core.SessionState {
		if len(st.Pairs) == 0 {
			st.Pairs = nil
		}
		if len(st.Phases) == 0 {
			st.Phases = nil
		}
		if st.Frontier != nil {
			fr := *st.Frontier
			for _, side := range []*core.FrontierSideSnapshot{&fr.Left, &fr.Right} {
				if len(side.ProposalNode) == 0 {
					side.ProposalNode = nil
				}
				if len(side.ProposalScore) == 0 {
					side.ProposalScore = nil
				}
				if len(side.Dirty) == 0 {
					side.Dirty = nil
				}
			}
			st.Frontier = &fr
		}
		return st
	}
	return reflect.DeepEqual(norm(*a), norm(*b))
}

func TestFullRoundTrip(t *testing.T) {
	for _, engine := range []core.Engine{core.EngineSequential, core.EngineParallel, core.EngineFrontier, core.EngineHybrid} {
		t.Run(engine.String(), func(t *testing.T) {
			opts := core.DefaultOptions()
			opts.Engine = engine
			g1, g2, s := testSession(t, 42, 300, opts, 3)
			st := s.ExportState()

			var buf bytes.Buffer
			if err := Write(&buf, g1, g2, st); err != nil {
				t.Fatal(err)
			}
			rg1, rg2, rst, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if err := rg1.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := rg2.Validate(); err != nil {
				t.Fatal(err)
			}
			if !stateEqual(st, rst) {
				t.Fatal("decoded state differs from exported state")
			}

			// Canonical: re-encoding is byte-identical.
			var again bytes.Buffer
			if err := Write(&again, rg1, rg2, rst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				t.Fatal("re-encoding is not byte-identical")
			}

			// The restored session finishes identically to the original.
			restored, err := core.RestoreSession(rg1, rg2, rst)
			if err != nil {
				t.Fatal(err)
			}
			finish := func(s *core.Session) *core.Result {
				remaining := opts.Iterations - s.Sweeps()
				if _, err := s.RunContext(context.Background(), remaining); err != nil {
					t.Fatal(err)
				}
				return s.Result()
			}
			want, got := finish(s), finish(restored)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("restored run diverged: %d pairs, want %d", len(got.Pairs), len(want.Pairs))
			}
		})
	}
}

func TestStateOnlyRoundTrip(t *testing.T) {
	opts := core.DefaultOptions()
	g1, g2, s := testSession(t, 7, 250, opts, 2)
	st := s.ExportState()

	var gbuf1, gbuf2, sbuf bytes.Buffer
	if err := WriteGraph(&gbuf1, g1); err != nil {
		t.Fatal(err)
	}
	if err := WriteGraph(&gbuf2, g2); err != nil {
		t.Fatal(err)
	}
	if err := WriteState(&sbuf, st); err != nil {
		t.Fatal(err)
	}

	rg1, err := ReadGraph(bytes.NewReader(gbuf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rg2, err := ReadGraph(bytes.NewReader(gbuf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rst, err := ReadState(bytes.NewReader(sbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !stateEqual(st, rst) {
		t.Fatal("decoded state differs")
	}
	if _, err := core.RestoreSession(rg1, rg2, rst); err != nil {
		t.Fatal(err)
	}

	// Kinds do not cross: a state stream is not a graph stream or a full
	// snapshot.
	if _, err := ReadGraph(bytes.NewReader(sbuf.Bytes())); err == nil {
		t.Error("state stream accepted as a graph")
	}
	if _, _, _, err := Read(bytes.NewReader(sbuf.Bytes())); err == nil {
		t.Error("state stream accepted as a full snapshot")
	}
	if _, err := ReadState(bytes.NewReader(gbuf1.Bytes())); err == nil {
		t.Error("graph stream accepted as a state")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	opts := core.DefaultOptions()
	g1, g2, s := testSession(t, 13, 200, opts, 2)
	var buf bytes.Buffer
	if err := Write(&buf, g1, g2, s.ExportState()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, _, _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, _, _, err := Read(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Error("garbage accepted")
	}

	// Version skew is refused explicitly.
	skew := append([]byte(nil), valid...)
	skew[4] = Version + 1
	if _, _, _, err := Read(bytes.NewReader(skew)); err == nil {
		t.Error("future version accepted")
	}

	// Every truncation is an error, never a panic.
	for cut := 0; cut < len(valid); cut += 7 {
		if _, _, _, err := Read(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Any single-byte flip breaks the checksum (or an earlier structural
	// check); sample the whole stream.
	for pos := 0; pos < len(valid); pos += 11 {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x41
		if _, _, _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte flip at %d accepted", pos)
		}
	}
}
