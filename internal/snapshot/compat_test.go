package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"github.com/sociograph/reconcile/internal/core"
)

// Version-1 backward compatibility: streams written before the hybrid engine
// and the bounded phase log (format version 1) must keep decoding. The
// helpers below replicate the version-1 wire layout byte for byte — the
// version-2 layout minus the hybrid regime flag and the evicted-phase totals
// — so the tests cannot silently start exercising the new encoder.

// v1Frame frames a payload exactly as the version-1 writer did.
func v1Frame(kind byte, payload []byte) []byte {
	out := []byte{'R', 'S', 'N', 'P'}
	out = binary.AppendUvarint(out, 1) // version
	out = append(out, kind)
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

func v1AppendPhases(out []byte, phases []core.PhaseStat) []byte {
	out = binary.AppendUvarint(out, uint64(len(phases)))
	for _, ph := range phases {
		out = binary.AppendUvarint(out, uint64(ph.Iteration))
		out = binary.AppendUvarint(out, uint64(ph.MinDegree))
		out = binary.AppendUvarint(out, uint64(ph.Matched))
		out = binary.AppendUvarint(out, uint64(ph.TotalL))
	}
	return out
}

func v1AppendFrontier(out []byte, fr *core.FrontierSnapshot) []byte {
	if fr == nil {
		return append(out, 0)
	}
	out = append(out, 1)
	out = binary.AppendUvarint(out, uint64(fr.Rescored))
	for _, side := range []*core.FrontierSideSnapshot{&fr.Left, &fr.Right} {
		out = binary.AppendUvarint(out, uint64(len(side.ProposalNode)))
		for _, v := range side.ProposalNode {
			out = binary.LittleEndian.AppendUint32(out, uint32(v))
		}
		for _, sc := range side.ProposalScore {
			out = binary.LittleEndian.AppendUint32(out, uint32(sc))
		}
		out = binary.AppendUvarint(out, uint64(len(side.Dirty)))
		for _, v := range side.Dirty {
			out = binary.LittleEndian.AppendUint32(out, uint32(v))
		}
	}
	return out
}

// v1EncodeState renders st in the version-1 state layout. The state must be
// one a version-1 session could have held: no hybrid regime, nothing evicted.
func v1EncodeState(t *testing.T, st *core.SessionState) []byte {
	t.Helper()
	if st.HybridFrontier || st.PhasesDropped != 0 || st.DroppedMatched != 0 {
		t.Fatal("state uses version-2 fields; a version-1 stream cannot hold it")
	}
	var out []byte
	o := st.Opts
	for _, v := range []int{o.Threshold, o.Iterations, o.MinBucketExp, o.MaxDegree,
		int(o.Engine), o.Workers, int(o.Ties), int(o.Scoring), o.MinMargin} {
		out = binary.AppendUvarint(out, uint64(v))
	}
	if o.DisableBucketing {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.AppendUvarint(out, uint64(st.N1))
	out = binary.AppendUvarint(out, uint64(st.N2))
	out = binary.AppendUvarint(out, uint64(len(st.Pairs)))
	for _, p := range st.Pairs {
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Left))
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Right))
	}
	out = binary.AppendUvarint(out, uint64(st.Seeds))
	out = binary.AppendUvarint(out, uint64(st.Sweeps))
	out = binary.AppendUvarint(out, uint64(st.NextBucket))
	out = v1AppendPhases(out, st.Phases)
	return v1AppendFrontier(out, st.Frontier)
}

// TestReadStateV1 pins that version-1 state streams — frontier and
// cache-free alike — still decode, restore, and re-encode (as version 2)
// without loss.
func TestReadStateV1(t *testing.T) {
	for _, engine := range []core.Engine{core.EngineFrontier, core.EngineParallel} {
		t.Run(engine.String(), func(t *testing.T) {
			opts := core.DefaultOptions()
			opts.Engine = engine
			g1, g2, s := testSession(t, 99, 200, opts, 3)
			st := s.ExportState()

			stream := v1Frame(kindState, v1EncodeState(t, st))
			got, err := ReadState(bytes.NewReader(stream))
			if err != nil {
				t.Fatalf("version-1 stream rejected: %v", err)
			}
			if !stateEqual(st, got) {
				t.Fatal("version-1 decode differs from the exported state")
			}
			if _, err := core.RestoreSession(g1, g2, got); err != nil {
				t.Fatalf("restore of version-1 state: %v", err)
			}

			// Re-encoding writes the current version; the upgraded stream
			// must hold the same state.
			var v2 bytes.Buffer
			if err := WriteState(&v2, got); err != nil {
				t.Fatal(err)
			}
			again, err := ReadState(bytes.NewReader(v2.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !stateEqual(st, again) {
				t.Fatal("version upgrade changed the state")
			}
		})
	}
}

// TestReadDeltaV1 pins that version-1 delta records still decode and replay.
func TestReadDeltaV1(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Engine = core.EngineFrontier
	_, _, s := testSession(t, 101, 200, opts, 0)
	base := s.ExportState()
	s.Run(1)
	cur := s.ExportState()
	d, err := core.DiffStates(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if d.BasePhasesDropped != 0 || d.PhasesDropped != 0 || d.DroppedMatched != 0 || d.HybridFrontier {
		t.Fatal("delta uses version-2 fields; a version-1 stream cannot hold it")
	}

	var payload []byte
	for _, v := range []int{d.BasePairs, d.BasePhases, d.BaseSweeps, d.BaseNextBucket, d.Sweeps, d.NextBucket} {
		payload = binary.AppendUvarint(payload, uint64(v))
	}
	payload = binary.AppendUvarint(payload, uint64(len(d.NewPairs)))
	for _, p := range d.NewPairs {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(p.Left))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(p.Right))
	}
	payload = v1AppendPhases(payload, d.NewPhases)
	if d.Frontier == nil {
		payload = append(payload, 0)
	} else {
		payload = append(payload, 1)
		payload = binary.AppendUvarint(payload, uint64(d.Frontier.Rescored))
		for _, side := range []*core.FrontierSideDelta{&d.Frontier.Left, &d.Frontier.Right} {
			payload = binary.AppendUvarint(payload, uint64(len(side.Index)))
			prev := 0
			for i, idx := range side.Index {
				gap := idx - prev
				if i == 0 {
					gap = idx
				}
				payload = binary.AppendUvarint(payload, uint64(gap))
				prev = idx
			}
			for _, v := range side.Node {
				payload = binary.LittleEndian.AppendUint32(payload, uint32(v))
			}
			for _, sc := range side.Score {
				payload = binary.LittleEndian.AppendUint32(payload, uint32(sc))
			}
			payload = binary.AppendUvarint(payload, uint64(len(side.Dirty)))
			for _, v := range side.Dirty {
				payload = binary.LittleEndian.AppendUint32(payload, uint32(v))
			}
		}
	}

	got, err := ReadDelta(bytes.NewReader(v1Frame(kindDelta, payload)))
	if err != nil {
		t.Fatalf("version-1 delta rejected: %v", err)
	}
	if !deltaEqual(d, got) {
		t.Fatal("version-1 delta decode differs")
	}
	replayed, err := core.ApplyDelta(base, got)
	if err != nil {
		t.Fatal(err)
	}
	if !stateEqual(cur, replayed) {
		t.Fatal("replay of version-1 delta diverged")
	}
}
