package snapshot

import (
	"bytes"
	"testing"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/graph"
)

func testManifest() *core.RangeManifest {
	return &core.RangeManifest{
		Ranges:         4,
		NLevels:        3,
		N1:             1000,
		N2:             900,
		TotalPairs:     123,
		Seeds:          17,
		Sweeps:         5,
		NextBucket:     2,
		PhasesDropped:  20,
		DroppedMatched: 11,
		HybridFrontier: true,
		Phases: []core.PhaseStat{
			{Iteration: 5, MinDegree: 8, Matched: 3, TotalL: 90},
			{Iteration: 5, MinDegree: 4, Matched: 1, TotalL: 91},
		},
		Frontier: &core.ManifestFrontier{
			Rescored:   98765,
			DirtyLeft:  []graph.NodeID{9, 1, 4, 4},
			DirtyRight: []graph.NodeID{2},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	for name, man := range map[string]*core.RangeManifest{
		"full":        testManifest(),
		"no-frontier": {Ranges: 2, N1: 10, N2: 10, TotalPairs: 0},
		"zero":        {},
	} {
		var buf bytes.Buffer
		if err := WriteManifest(&buf, man); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		var again bytes.Buffer
		if err := WriteManifest(&again, got); err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("%s: encoding not canonical", name)
		}
		if got.Ranges != man.Ranges || got.Sweeps != man.Sweeps || got.TotalPairs != man.TotalPairs ||
			got.HybridFrontier != man.HybridFrontier || len(got.Phases) != len(man.Phases) {
			t.Fatalf("%s: round-trip lost fields: %+v", name, got)
		}
		if (got.Frontier == nil) != (man.Frontier == nil) {
			t.Fatalf("%s: frontier presence lost", name)
		}
		if man.Frontier != nil {
			if got.Frontier.Rescored != man.Frontier.Rescored ||
				len(got.Frontier.DirtyLeft) != len(man.Frontier.DirtyLeft) ||
				len(got.Frontier.DirtyRight) != len(man.Frontier.DirtyRight) {
				t.Fatalf("%s: frontier fields lost: %+v", name, got.Frontier)
			}
		}
	}
}

func TestManifestRejectsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, testManifest()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// A manifest record is not a state record and vice versa.
	if _, err := ReadState(bytes.NewReader(valid)); err == nil {
		t.Error("ReadState accepted a manifest record")
	}
	var st bytes.Buffer
	if err := WriteState(&st, &core.SessionState{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bytes.NewReader(st.Bytes())); err == nil {
		t.Error("ReadManifest accepted a state record")
	}

	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := ReadManifest(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	for i := 0; i < len(valid); i += 11 {
		corrupt := bytes.Clone(valid)
		corrupt[i] ^= 0x20
		if _, err := ReadManifest(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("accepted corruption at byte %d", i)
		}
	}
}
