// Package loadgen drives a live serve process with deterministic mixed
// multi-tenant load and reports throughput, latency quantiles, error
// counts, and end-of-run invariant checks (scheduler slot leaks, durable
// byte-accounting drift) as a JSON-ready summary.
//
// The workload content — graphs, seeds, job shapes — derives entirely from
// Config.Seed through internal/xrand's splittable streams, so two runs
// against equivalent servers submit byte-identical requests; only the
// interleaving (and therefore the timing figures) varies. The driver is a
// plain HTTP client: it exercises the real wire surface, including the
// admin API it uses to register its tenants and to verify invariants after
// the load settles.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sociograph/reconcile/internal/metrics"
	"github.com/sociograph/reconcile/internal/xrand"
)

// Scenario names accepted by Config.Scenario. Every scenario draws from
// the same four job shapes; they differ in the mix:
//
//	mixed        round-robin over all four shapes (the default)
//	batch        cold batch submissions only
//	incremental  incremental AddSeeds streams only
//	churn        checkpoint/cancel/resume churn only
//	deletes      submit-then-DELETE storms only
var Scenarios = []string{"mixed", "batch", "incremental", "churn", "deletes"}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the serve process root, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Scenario picks the job-shape mix; see Scenarios. Empty means mixed.
	Scenario string
	// Tenants is the number of load tenants (registered over the admin API
	// as load-00, load-01, …). At least 1.
	Tenants int
	// JobsPerTenant is the number of jobs each tenant submits.
	JobsPerTenant int
	// Workers is the number of concurrent driver goroutines per tenant;
	// <= 0 means 4. Total concurrency is Tenants * Workers.
	Workers int
	// Nodes is the per-side graph size of generated instances; <= 0 means 48.
	Nodes int
	// Seed fixes the workload content. Two runs with equal Seed and shape
	// parameters submit identical graphs, seeds and operation sequences.
	Seed uint64
	// AdminToken authenticates against /v1/admin when the server has one.
	AdminToken string
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
}

// TracePhase aggregates one span kind's execution-trace totals across every
// job the run finished, folded from each job's /trace endpoint.
type TracePhase struct {
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Quantiles summarizes one operation's latency histogram, in seconds.
type Quantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Report is the run summary, emitted as JSON by cmd/loadgen.
type Report struct {
	Scenario      string `json:"scenario"`
	Tenants       int    `json:"tenants"`
	JobsPerTenant int    `json:"jobsPerTenant"`
	JobsSubmitted int64  `json:"jobsSubmitted"`
	JobsDone      int64  `json:"jobsDone"`
	JobsDeleted   int64  `json:"jobsDeleted"`
	Requests      int64  `json:"requests"`
	// TooManyRequests counts 429 responses (quota refusals); the driver
	// retries them, so they are back-pressure, not failures.
	TooManyRequests int64 `json:"tooManyRequests"`
	// Failures are unexpected responses or transport errors, with context.
	// A clean run has none.
	Failures []string `json:"failures"`
	// Invariants are end-of-run violations: scheduler slots or queue
	// entries still held after settling, or byte-accounting drift between
	// the incremental counter and a filesystem walk. A correct server
	// under any load has none.
	Invariants     []string             `json:"invariants"`
	ElapsedSeconds float64              `json:"elapsedSeconds"`
	JobsPerSecond  float64              `json:"jobsPerSecond"`
	Latency        map[string]Quantiles `json:"latency"`
	// TracePhases is the server-side view of where job time went: per span
	// kind (sweep, checkpoint-write, slot-wait, ...), summed over the jobs'
	// execution traces. Empty only when no job finished.
	TracePhases map[string]TracePhase `json:"tracePhases"`
}

// driver carries one run's shared state.
type driver struct {
	cfg    Config
	client *http.Client

	submitted atomic.Int64
	done      atomic.Int64
	deleted   atomic.Int64
	requests  atomic.Int64
	tooMany   atomic.Int64

	mu         sync.Mutex
	failures   []string
	violations []string
	trace      map[string]TracePhase

	hist map[string]*metrics.Histogram
}

// ops are the latency classes the driver tracks.
var ops = []string{"submit", "poll", "seeds", "checkpoint", "cancel", "resume", "delete", "job"}

// Run executes the configured scenario and returns its report. The context
// bounds the whole run; on cancellation the report covers what finished.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	if cfg.JobsPerTenant < 1 {
		cfg.JobsPerTenant = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 48
	}
	if cfg.Scenario == "" {
		cfg.Scenario = "mixed"
	}
	valid := false
	for _, s := range Scenarios {
		valid = valid || s == cfg.Scenario
	}
	if !valid {
		return nil, fmt.Errorf("loadgen: unknown scenario %q (have %v)", cfg.Scenario, Scenarios)
	}
	d := &driver{cfg: cfg, client: cfg.Client,
		hist: map[string]*metrics.Histogram{}, trace: map[string]TracePhase{}}
	if d.client == nil {
		d.client = &http.Client{Timeout: 2 * time.Minute}
	}
	reg := metrics.NewRegistry()
	for _, op := range ops {
		d.hist[op] = reg.Histogram("op_"+op+"_seconds", "", nil)
	}

	for i := 0; i < cfg.Tenants; i++ {
		if err := d.registerTenant(ctx, d.tenantName(i)); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for ti := 0; ti < cfg.Tenants; ti++ {
		// One xrand stream per tenant, split per job: content depends only
		// on (Seed, tenant index, job index), never on scheduling.
		troot := xrand.New(cfg.Seed + uint64(ti)*0x9e3779b97f4a7c15)
		jobRands := make([]*xrand.Rand, cfg.JobsPerTenant)
		for ji := range jobRands {
			jobRands[ji] = troot.Split()
		}
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(ti, w int) {
				defer wg.Done()
				for ji := w; ji < cfg.JobsPerTenant; ji += cfg.Workers {
					if ctx.Err() != nil {
						return
					}
					d.runJob(ctx, d.tenantName(ti), jobRands[ji], ji)
				}
			}(ti, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	if ctx.Err() == nil {
		d.verifyInvariants(ctx)
	}

	rep := &Report{
		Scenario:        cfg.Scenario,
		Tenants:         cfg.Tenants,
		JobsPerTenant:   cfg.JobsPerTenant,
		JobsSubmitted:   d.submitted.Load(),
		JobsDone:        d.done.Load(),
		JobsDeleted:     d.deleted.Load(),
		Requests:        d.requests.Load(),
		TooManyRequests: d.tooMany.Load(),
		Failures:        d.failures,
		ElapsedSeconds:  elapsed,
		Latency:         map[string]Quantiles{},
	}
	if elapsed > 0 {
		rep.JobsPerSecond = float64(rep.JobsDone) / elapsed
	}
	for _, op := range ops {
		h := d.hist[op]
		if h.Count() == 0 {
			continue
		}
		rep.Latency[op] = Quantiles{
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
	}
	rep.TracePhases = d.trace
	// Failures were appended concurrently; fix their order.
	sort.Strings(rep.Failures)
	if rep.Failures == nil {
		rep.Failures = []string{}
	}
	rep.Invariants = d.violations
	if rep.Invariants == nil {
		rep.Invariants = []string{}
	}
	return rep, ctx.Err()
}

func (d *driver) tenantName(i int) string { return fmt.Sprintf("load-%02d", i) }

func (d *driver) fail(format string, args ...any) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.failures) < 100 { // cap: a systemic failure repeats identically
		d.failures = append(d.failures, fmt.Sprintf(format, args...))
	}
}

// observe records one latency sample.
func (d *driver) observe(op string, start time.Time) {
	d.hist[op].Observe(time.Since(start).Seconds())
}

// doJSON performs one request with a JSON body (nil for none), decodes the
// response into out (when non-nil), and returns the status code. 429s are
// retried with a small backoff — quota refusals are back-pressure, and the
// driver's job is to lean on the server until admitted.
func (d *driver) doJSON(ctx context.Context, method, url string, body, out any, headers map[string]string) (int, error) {
	var encoded []byte
	if body != nil {
		var err error
		if encoded, err = json.Marshal(body); err != nil {
			return 0, err
		}
	}
	backoff := 2 * time.Millisecond
	for {
		var rd io.Reader
		if encoded != nil {
			rd = bytes.NewReader(encoded)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return 0, err
		}
		if encoded != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := d.client.Do(req)
		d.requests.Add(1)
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			d.tooMany.Add(1)
			select {
			case <-ctx.Done():
				return resp.StatusCode, ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		var decodeErr error
		if out != nil && resp.StatusCode < 300 {
			decodeErr = json.NewDecoder(resp.Body).Decode(out)
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		return resp.StatusCode, decodeErr
	}
}

// registerTenant PUTs an open, unlimited load tenant over the admin API.
func (d *driver) registerTenant(ctx context.Context, name string) error {
	headers := map[string]string{}
	if d.cfg.AdminToken != "" {
		headers["Authorization"] = "Bearer " + d.cfg.AdminToken
	}
	code, err := d.doJSON(ctx, http.MethodPut, d.cfg.BaseURL+"/v1/admin/tenants/"+name,
		map[string]any{"name": name}, nil, headers)
	if err != nil {
		return fmt.Errorf("loadgen: registering tenant %s: %w", name, err)
	}
	if code != http.StatusOK {
		return fmt.Errorf("loadgen: registering tenant %s: status %d", name, code)
	}
	return nil
}

// instance is one generated job request in the serve wire format.
type instance struct {
	G1          graphSpec  `json:"g1"`
	G2          graphSpec  `json:"g2"`
	Seeds       [][2]int   `json:"seeds"`
	Options     optionsMap `json:"options,omitempty"`
	UntilStable bool       `json:"untilStable,omitempty"`
	MaxSweeps   int        `json:"maxSweeps,omitempty"`
}

type graphSpec struct {
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"`
}

type optionsMap map[string]any

// genInstance builds a reconciliation instance the paper's way: a base
// random graph, two noisy copies (each keeps a base edge with probability
// 0.85), and identity seed links on a fraction of nodes. extraSeeds holds
// follow-up identity seeds for incremental scenarios, disjoint from Seeds.
func genInstance(r *xrand.Rand, n int) (inst instance, extraSeeds [][2]int) {
	edges := 3 * n
	seen := map[[2]int]bool{}
	var base [][2]int
	for len(base) < edges {
		u, v := r.IntN(n), r.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		base = append(base, [2]int{u, v})
	}
	keep := func() [][2]int {
		var out [][2]int
		for _, e := range base {
			if r.Bool(0.85) {
				out = append(out, e)
			}
		}
		return out
	}
	inst.G1 = graphSpec{Nodes: n, Edges: keep()}
	inst.G2 = graphSpec{Nodes: n, Edges: keep()}
	perm := r.Perm(n)
	for i, node := range perm {
		pair := [2]int{node, node}
		switch {
		case i < n/10+1:
			inst.Seeds = append(inst.Seeds, pair)
		case i < n/5+2:
			extraSeeds = append(extraSeeds, pair)
		}
	}
	return inst, extraSeeds
}

// shapeFor picks a job's shape under the scenario mix.
func (d *driver) shapeFor(ji int) string {
	if d.cfg.Scenario != "mixed" {
		return d.cfg.Scenario
	}
	return []string{"batch", "incremental", "churn", "deletes"}[ji%4]
}

// runJob drives one job through its shape's full lifecycle.
func (d *driver) runJob(ctx context.Context, tenantName string, r *xrand.Rand, ji int) {
	shape := d.shapeFor(ji)
	base := d.cfg.BaseURL + "/v1/tenants/" + tenantName + "/jobs"
	inst, extraSeeds := genInstance(r, d.cfg.Nodes)
	inst.UntilStable = true
	inst.MaxSweeps = 8

	jobStart := time.Now()
	var created struct {
		ID string `json:"id"`
	}
	start := time.Now()
	code, err := d.doJSON(ctx, http.MethodPost, base, inst, &created, nil)
	d.observe("submit", start)
	if err != nil || code != http.StatusAccepted {
		d.fail("%s job %d: submit: status %d err %v", tenantName, ji, code, err)
		return
	}
	d.submitted.Add(1)
	jobURL := base + "/" + created.ID

	switch shape {
	case "batch":
		if !d.awaitTerminal(ctx, jobURL, "done") {
			return
		}
	case "incremental":
		if !d.awaitTerminal(ctx, jobURL, "done") {
			return
		}
		for len(extraSeeds) > 0 {
			half := (len(extraSeeds) + 1) / 2
			batch := extraSeeds[:half]
			extraSeeds = extraSeeds[half:]
			start = time.Now()
			code, err = d.doJSON(ctx, http.MethodPost, jobURL+"/seeds",
				map[string][][2]int{"seeds": batch}, nil, nil)
			d.observe("seeds", start)
			// 409 is a legitimate outcome, not a failure: a ground-truth
			// seed can conflict with a link the earlier sweeps inferred,
			// and the API rejects the batch atomically. Skip it — no run
			// was started — and stream the next batch.
			if code == http.StatusConflict {
				continue
			}
			if err != nil || code != http.StatusAccepted {
				d.fail("%s job %s: seeds: status %d err %v", tenantName, created.ID, code, err)
				return
			}
			if !d.awaitTerminal(ctx, jobURL, "done") {
				return
			}
		}
	case "churn":
		// Checkpoint and cancel race the run on purpose; whichever state
		// the job lands in, resume must finish it.
		start = time.Now()
		code, err = d.doJSON(ctx, http.MethodPost, jobURL+"/checkpoint", nil, nil, nil)
		d.observe("checkpoint", start)
		if err != nil || (code != http.StatusOK && code != http.StatusAccepted) {
			d.fail("%s job %s: checkpoint: status %d err %v", tenantName, created.ID, code, err)
			return
		}
		start = time.Now()
		code, err = d.doJSON(ctx, http.MethodPost, jobURL+"/cancel", nil, nil, nil)
		d.observe("cancel", start)
		if err != nil || code != http.StatusAccepted {
			d.fail("%s job %s: cancel: status %d err %v", tenantName, created.ID, code, err)
			return
		}
		st, ok := d.awaitSettled(ctx, jobURL)
		if !ok {
			return
		}
		if st == "cancelled" {
			start = time.Now()
			code, err = d.doJSON(ctx, http.MethodPost, jobURL+"/resume", nil, nil, nil)
			d.observe("resume", start)
			if err != nil || code != http.StatusAccepted {
				d.fail("%s job %s: resume: status %d err %v", tenantName, created.ID, code, err)
				return
			}
		}
		if !d.awaitTerminal(ctx, jobURL, "done") {
			return
		}
	case "deletes":
		if !d.awaitTerminal(ctx, jobURL, "done") {
			return
		}
		d.fetchTrace(ctx, jobURL) // before DELETE destroys the trace
		start = time.Now()
		code, err = d.doJSON(ctx, http.MethodDelete, jobURL, nil, nil, nil)
		d.observe("delete", start)
		if err != nil || code != http.StatusOK {
			d.fail("%s job %s: delete: status %d err %v", tenantName, created.ID, code, err)
			return
		}
		d.deleted.Add(1)
	}
	if shape != "deletes" {
		d.fetchTrace(ctx, jobURL)
	}
	d.observe("job", jobStart)
	d.done.Add(1)
}

// fetchTrace folds one finished job's per-kind span totals into the run's
// phase aggregate. A missing trace is not a failure — it just contributes
// nothing (the report's per-phase section is best-effort observability).
func (d *driver) fetchTrace(ctx context.Context, jobURL string) {
	var v struct {
		Totals map[string]struct {
			Count int64 `json:"count"`
			Nanos int64 `json:"nanos"`
		} `json:"totals"`
	}
	code, err := d.doJSON(ctx, http.MethodGet, jobURL+"/trace", nil, &v, nil)
	if err != nil || code != http.StatusOK {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for kind, t := range v.Totals {
		p := d.trace[kind]
		p.Count += t.Count
		p.Seconds += float64(t.Nanos) / 1e9
		d.trace[kind] = p
	}
}

// awaitSettled polls the job until it leaves "running" and returns the
// terminal status.
func (d *driver) awaitSettled(ctx context.Context, jobURL string) (string, bool) {
	interval := 2 * time.Millisecond
	for {
		var v struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		start := time.Now()
		code, err := d.doJSON(ctx, http.MethodGet, jobURL, nil, &v, nil)
		d.observe("poll", start)
		if err != nil || code != http.StatusOK {
			d.fail("%s: poll: status %d err %v", jobURL, code, err)
			return "", false
		}
		if v.Status != "running" {
			return v.Status, true
		}
		select {
		case <-ctx.Done():
			return "", false
		case <-time.After(interval):
		}
		if interval < 50*time.Millisecond {
			interval = interval * 3 / 2
		}
	}
}

// awaitTerminal polls until settled and requires the given status.
func (d *driver) awaitTerminal(ctx context.Context, jobURL, want string) bool {
	st, ok := d.awaitSettled(ctx, jobURL)
	if !ok {
		return false
	}
	if st != want {
		d.fail("%s: settled as %q, want %q", jobURL, st, want)
		return false
	}
	return true
}

// adminTenant mirrors the slice of GET /v1/admin/tenants the invariant
// checks read.
type adminTenant struct {
	Name  string `json:"name"`
	Usage struct {
		RunSlots        int    `json:"runSlots"`
		QueuedRuns      int    `json:"queuedRuns"`
		CheckpointBytes int64  `json:"checkpointBytes"`
		WalkedBytes     *int64 `json:"walkedBytes"`
	} `json:"usage"`
}

// verifyInvariants asks the admin API for the settled end-of-run picture:
// no scheduler slots or queue entries may remain, and each tenant's
// incremental byte counter must match the server's filesystem walk.
func (d *driver) verifyInvariants(ctx context.Context) {
	headers := map[string]string{}
	if d.cfg.AdminToken != "" {
		headers["Authorization"] = "Bearer " + d.cfg.AdminToken
	}
	var resp struct {
		Tenants []adminTenant `json:"tenants"`
	}
	code, err := d.doJSON(ctx, http.MethodGet, d.cfg.BaseURL+"/v1/admin/tenants?verify=bytes", nil, &resp, headers)
	if err != nil || code != http.StatusOK {
		d.fail("admin verify: status %d err %v", code, err)
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range resp.Tenants {
		if t.Usage.RunSlots != 0 {
			d.violations = append(d.violations, fmt.Sprintf("tenant %s: %d scheduler slots leaked", t.Name, t.Usage.RunSlots))
		}
		if t.Usage.QueuedRuns != 0 {
			d.violations = append(d.violations, fmt.Sprintf("tenant %s: %d runs still queued", t.Name, t.Usage.QueuedRuns))
		}
		if t.Usage.WalkedBytes != nil && *t.Usage.WalkedBytes != t.Usage.CheckpointBytes {
			d.violations = append(d.violations, fmt.Sprintf("tenant %s: byte drift: tracked %d, walked %d",
				t.Name, t.Usage.CheckpointBytes, *t.Usage.WalkedBytes))
		}
	}
}
