package loadgen

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/sociograph/reconcile/internal/xrand"
)

// TestGenInstanceDeterministic pins the harness's content determinism:
// equal seeds must produce byte-identical instances, and the seed batches
// must be disjoint from the initial seed set.
func TestGenInstanceDeterministic(t *testing.T) {
	a, extraA := genInstance(xrand.New(42), 48)
	b, extraB := genInstance(xrand.New(42), 48)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("same seed produced different instances")
	}
	jea, _ := json.Marshal(extraA)
	jeb, _ := json.Marshal(extraB)
	if string(jea) != string(jeb) {
		t.Fatal("same seed produced different extra seed batches")
	}
	if len(a.Seeds) == 0 || len(extraA) == 0 {
		t.Fatalf("want non-empty seeds (%d) and extra seeds (%d)", len(a.Seeds), len(extraA))
	}
	initial := map[[2]int]bool{}
	for _, p := range a.Seeds {
		initial[p] = true
	}
	for _, p := range extraA {
		if initial[p] {
			t.Fatalf("extra seed %v duplicates an initial seed", p)
		}
	}
	if len(a.G1.Edges) == 0 || len(a.G2.Edges) == 0 {
		t.Fatal("generated empty graphs")
	}
	c, _ := genInstance(xrand.New(43), 48)
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	if _, err := Run(context.Background(), Config{Scenario: "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestShapeMix pins the mixed round-robin and the pure scenarios.
func TestShapeMix(t *testing.T) {
	d := &driver{cfg: Config{Scenario: "mixed"}}
	want := []string{"batch", "incremental", "churn", "deletes", "batch"}
	for i, w := range want {
		if got := d.shapeFor(i); got != w {
			t.Fatalf("mixed job %d: shape %q, want %q", i, got, w)
		}
	}
	d.cfg.Scenario = "churn"
	for i := 0; i < 3; i++ {
		if got := d.shapeFor(i); got != "churn" {
			t.Fatalf("pure scenario job %d: shape %q", i, got)
		}
	}
}
