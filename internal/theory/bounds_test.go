package theory

import (
	"math"
	"testing"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestERExpectations(t *testing.T) {
	m := ERModel{N: 1000, P: 0.1, S: 0.5, L: 0.2}
	wantTrue := 999 * 0.1 * 0.25 * 0.2
	if got := m.ExpectedTrueWitnesses(); math.Abs(got-wantTrue) > 1e-9 {
		t.Fatalf("true witnesses = %v, want %v", got, wantTrue)
	}
	wantFalse := 998 * 0.01 * 0.25 * 0.2
	if got := m.ExpectedFalseWitnesses(); math.Abs(got-wantFalse) > 1e-9 {
		t.Fatalf("false witnesses = %v, want %v", got, wantFalse)
	}
	// The factor-of-p gap of Section 4.1.
	ratio := m.ExpectedFalseWitnesses() / m.ExpectedTrueWitnesses()
	if math.Abs(ratio-m.P*998/999) > 1e-9 {
		t.Fatalf("gap ratio = %v, want ≈ p", ratio)
	}
}

func TestTheorem1Regime(t *testing.T) {
	in := ERModel{N: 10000, P: 0.1, S: 0.8, L: 0.5}
	if !in.Theorem1Applies() {
		t.Error("dense regime should satisfy Theorem 1")
	}
	out := ERModel{N: 10000, P: 0.0001, S: 0.5, L: 0.05}
	if out.Theorem1Applies() {
		t.Error("sparse regime should not satisfy Theorem 1")
	}
}

func TestConnectivityThreshold(t *testing.T) {
	p := ConnectivityThresholdP(10000, 0.5, 1)
	if p <= 0 || p >= 1 {
		t.Fatalf("threshold p = %v", p)
	}
	// n·p·s == c·ln n by construction.
	if got := 10000 * p * 0.5; math.Abs(got-math.Log(10000)) > 1e-9 {
		t.Fatalf("nps = %v, want ln n = %v", got, math.Log(10000))
	}
}

func TestChernoffBounds(t *testing.T) {
	if got := ChernoffLowerTail(100, 0.5); got >= 1e-5 {
		t.Fatalf("lower tail = %v; should be tiny", got)
	}
	if got := ChernoffUpperTail(100, 0.5); got >= 1e-2 {
		t.Fatalf("upper tail = %v; should be small", got)
	}
	for _, f := range []func(){
		func() { ChernoffLowerTail(10, -0.1) },
		func() { ChernoffLowerTail(10, 1.1) },
		func() { ChernoffUpperTail(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPAModel(t *testing.T) {
	m := PAModel{N: 1000000, M: 20, S: 0.5, L: 0.1}
	if m.Lemma12Applies() {
		t.Error("ms² = 5 should not satisfy Lemma 12")
	}
	m2 := PAModel{N: 1000000, M: 50, S: 0.7, L: 0.1}
	if !m2.Lemma12Applies() {
		t.Error("ms² = 24.5 should satisfy Lemma 12")
	}
	if m.HighDegreeThreshold() <= 0 {
		t.Error("high degree threshold must be positive")
	}
	if m.ExpectedGoodEdges() >= float64(m.M) {
		t.Error("good edges cannot exceed m")
	}
}

func TestMapReduceRounds(t *testing.T) {
	if got := MapReduceRounds(2, 1024); got != 4*2*10 {
		t.Fatalf("rounds = %d, want 80", got)
	}
	if got := MapReduceRounds(1, 1); got != 4 {
		t.Fatalf("degenerate rounds = %d, want 4", got)
	}
}

// Empirical validation of the Theorem 1 gap: measured first-phase witness
// counts for true pairs concentrate near (n-1)ps²l, and false-pair counts
// stay below half the true mean — the separation the algorithm exploits.
func TestTheorem1GapEmpirically(t *testing.T) {
	model := ERModel{N: 2000, P: 0.3, S: 0.7, L: 0.75}
	if !model.Theorem1Applies() {
		t.Fatal("test parameters must be in Theorem 1's regime")
	}
	r := xrand.New(1)
	g := gen.ErdosRenyi(r, model.N, model.P)
	g1, g2 := sampling.IndependentCopies(r, g, model.S, model.S)
	seeds := sampling.Seeds(r, graph.IdentityPairs(model.N), model.L)
	m, err := core.NewMatching(model.N, model.N, seeds)
	if err != nil {
		t.Fatal(err)
	}
	mu := model.ExpectedTrueWitnesses()
	half := int(mu / 2)
	lowTrue, highFalse := 0, 0
	const sample = 150
	for i := 0; i < sample; i++ {
		v := graph.NodeID(r.IntN(model.N))
		if got := core.SimilarityWitnesses(g1, g2, m, v, v); got < half {
			lowTrue++
		}
		w := graph.NodeID(r.IntN(model.N))
		if w == v {
			w = (w + 1) % graph.NodeID(model.N)
		}
		if got := core.SimilarityWitnesses(g1, g2, m, v, w); got >= half {
			highFalse++
		}
	}
	if lowTrue > 2 {
		t.Errorf("%d/%d true pairs below half the expected witness count", lowTrue, sample)
	}
	if highFalse > 2 {
		t.Errorf("%d/%d false pairs above half the expected witness count", highFalse, sample)
	}
}
