package theory

import (
	"github.com/sociograph/reconcile/internal/graph"
)

// Empirical counterparts of the structural lemmas of Section 4.2. Each
// function measures, on a concrete preferential attachment graph, the
// quantity the corresponding lemma bounds; the tests check the lemma's
// direction at finite size. The raw arrival-ordered edge list produced by
// gen.PAWithEnds carries the timing information the lemmas quantify over.

// LateArrivalMaxDegree returns the maximum final degree among nodes that
// arrived after time ψ·n. Lemma 5 ("high degree nodes are early-birds")
// proves this is o(log²n) w.h.p. for any constant ψ > 0.
func LateArrivalMaxDegree(g *graph.Graph, psi float64) int {
	n := g.NumNodes()
	start := int(psi * float64(n))
	maxd := 0
	for v := start; v < n; v++ {
		if d := g.Degree(graph.NodeID(v)); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// LateNeighborFraction returns, for node v, the fraction of its multigraph
// neighbors (one per raw edge, self-loops excluded) that arrived after time
// ε·n; in the PA construction a node's ID is its arrival time. Lemma 6
// ("the rich get richer") proves that every node of final degree ≥ log²n
// has at least ~1/3 of its neighbors arriving after εn. rawEdges must come
// from gen.PAWithEnds.
func LateNeighborFraction(rawEdges []graph.Edge, n int, v graph.NodeID, eps float64) float64 {
	cutoff := graph.NodeID(eps * float64(n))
	var total, late int
	for _, e := range rawEdges {
		if e.U == e.V {
			continue // self-loop: no neighbor
		}
		var other graph.NodeID
		switch {
		case e.U == v:
			other = e.V
		case e.V == v:
			other = e.U
		default:
			continue
		}
		total++
		if other >= cutoff {
			late++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(late) / float64(total)
}

// EarlyBirdMinDegree returns the minimum final degree among the first k
// nodes. Lemma 7 ("first-mover advantage") proves nodes arriving before
// n^0.3 reach degree ≥ log³n w.h.p.
func EarlyBirdMinDegree(g *graph.Graph, k int) int {
	if k > g.NumNodes() {
		k = g.NumNodes()
	}
	mind := -1
	for v := 0; v < k; v++ {
		d := g.Degree(graph.NodeID(v))
		if mind < 0 || d < mind {
			mind = d
		}
	}
	if mind < 0 {
		return 0
	}
	return mind
}

// MaxSharedNeighbors returns the largest |N(u) ∩ N(v)| over sampled pairs
// of distinct nodes both of degree < degCap. Lemma 10 proves that in PA
// graphs, pairs of nodes below polylog degree share at most 8 neighbors
// w.h.p. — the fact that makes threshold 9 error-free in the analysis.
// The sample slice holds the node IDs to examine pairwise.
func MaxSharedNeighbors(g *graph.Graph, sample []graph.NodeID, degCap int) int {
	maxShared := 0
	for i := 0; i < len(sample); i++ {
		u := sample[i]
		if g.Degree(u) >= degCap {
			continue
		}
		for j := i + 1; j < len(sample); j++ {
			v := sample[j]
			if g.Degree(v) >= degCap {
				continue
			}
			if c := g.CommonNeighborCount(u, v); c > maxShared {
				maxShared = c
			}
		}
	}
	return maxShared
}
