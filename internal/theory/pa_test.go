package theory

import (
	"math"
	"sort"
	"testing"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// Empirical checks of the Section 4.2 structural lemmas on finite PA graphs.
// These are direction checks, not w.h.p. proofs: the constants in the paper
// are asymptotic, so each test asserts the qualitative separation the lemma
// establishes, at a size a unit test can afford.

func TestLemma5EarlyBirds(t *testing.T) {
	// Nodes arriving after ψn = n/2 must have degree far below the top
	// degree (o(log²n) vs the early core's polynomial degrees).
	g := gen.PreferentialAttachment(xrand.New(1), 30000, 5)
	lateMax := LateArrivalMaxDegree(g, 0.5)
	logn := math.Log2(float64(g.NumNodes()))
	if float64(lateMax) > 3*logn*logn {
		t.Errorf("late arrival max degree %d exceeds 3·log²n = %.0f", lateMax, 3*logn*logn)
	}
	if lateMax >= g.MaxDegree()/4 {
		t.Errorf("late max degree %d too close to global max %d", lateMax, g.MaxDegree())
	}
}

func TestLemma6RichGetRicher(t *testing.T) {
	// High-degree nodes keep acquiring neighbors late in the process: a
	// sizable fraction of their (multigraph) neighbors arrive after εn.
	r := xrand.New(2)
	n, m := 20000, 5
	g, raw := gen.PAWithEnds(r, n, m)
	logn := math.Log2(float64(n))
	minDeg := int(logn * logn / 2)
	checked := 0
	for v := 0; v < 200 && checked < 20; v++ {
		if g.Degree(graph.NodeID(v)) < minDeg {
			continue
		}
		checked++
		frac := LateNeighborFraction(raw, n, graph.NodeID(v), 0.1)
		// Lemma 6's bound is 1/3 after εn for ε as a constant; allow a
		// generous floor at finite size.
		if frac < 0.2 {
			t.Errorf("node %d (degree %d): only %.2f of neighbors arrived after 0.1n",
				v, g.Degree(graph.NodeID(v)), frac)
		}
	}
	if checked == 0 {
		t.Skip("no node reached log²n/2 degree at this size")
	}
}

func TestLemma7FirstMovers(t *testing.T) {
	// Nodes arriving before n^0.3 end with degree well above the median.
	r := xrand.New(3)
	n := 30000
	g := gen.PreferentialAttachment(r, n, 5)
	k := int(math.Pow(float64(n), 0.3))
	mind := EarlyBirdMinDegree(g, k)
	med := graph.ComputeStats(g).MedDegree
	if mind <= 2*med {
		t.Errorf("earliest %d nodes: min degree %d not well above median %d", k, mind, med)
	}
}

func TestLemma10SharedNeighborsBounded(t *testing.T) {
	// Two nodes of polylog degree share very few neighbors — the fact that
	// lets threshold 9 avoid all errors in the PA analysis. Sample pairs of
	// mid/low-degree nodes and check the maximum overlap stays single-digit.
	r := xrand.New(4)
	n := 20000
	g := gen.PreferentialAttachment(r, n, 5)
	logn := math.Log(float64(n))
	degCap := int(logn * logn * logn) // log³n, the lemma's regime
	var sample []graph.NodeID
	for i := 0; i < 400; i++ {
		sample = append(sample, graph.NodeID(n/2+r.IntN(n/2)))
	}
	got := MaxSharedNeighbors(g, sample, degCap)
	if got > 8 {
		t.Errorf("sampled low-degree pair shares %d neighbors; Lemma 10 bounds this by 8", got)
	}
}

func TestEarlyBirdMinDegreeEdgeCases(t *testing.T) {
	g := gen.PreferentialAttachment(xrand.New(5), 100, 3)
	if got := EarlyBirdMinDegree(g, 0); got != 0 {
		t.Errorf("k=0: %d", got)
	}
	if got := EarlyBirdMinDegree(g, 1000); got <= 0 {
		t.Errorf("k>n should clamp and return a real degree, got %d", got)
	}
}

func TestLateArrivalMaxDegreeWholeGraph(t *testing.T) {
	g := gen.PreferentialAttachment(xrand.New(6), 1000, 3)
	if got := LateArrivalMaxDegree(g, 0); got != g.MaxDegree() {
		t.Errorf("psi=0 must scan everything: %d vs %d", got, g.MaxDegree())
	}
}

func TestDegreeDistributionTail(t *testing.T) {
	// Cross-check the PA degree tail against the theoretical P(deg >= d) ~
	// d^-2 decay: the 99th percentile degree should be roughly 10x the
	// median (it would be ~1x for a binomial graph).
	g := gen.PreferentialAttachment(xrand.New(7), 30000, 5)
	degs := make([]int, g.NumNodes())
	for v := range degs {
		degs[v] = g.Degree(graph.NodeID(v))
	}
	sort.Ints(degs)
	p50 := degs[len(degs)/2]
	p99 := degs[len(degs)*99/100]
	if p99 < 4*p50 {
		t.Errorf("p99/p50 = %d/%d; tail too light for PA", p99, p50)
	}
}
