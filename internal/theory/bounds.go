// Package theory implements the closed-form quantities from Section 4 of the
// paper — expected similarity-witness counts, Chernoff envelopes, and the
// parameter-regime predicates of the theorems — so that tests and
// experiments can check the implementation against the mathematics rather
// than against magic numbers.
package theory

import "math"

// ERModel bundles the parameters of the Erdős–Rényi analysis (Section 4.1):
// underlying graph G(n, p), edge survival s in each copy, link probability l.
type ERModel struct {
	N int
	P float64
	S float64
	L float64
}

// ExpectedTrueWitnesses returns E[witnesses(u_i, v_i)] in the first phase:
// (n-1)·p·s²·l — each of the other n-1 nodes is a neighbor with probability
// p, survives in both copies with probability s², and is seeded with
// probability l.
func (m ERModel) ExpectedTrueWitnesses() float64 {
	return float64(m.N-1) * m.P * m.S * m.S * m.L
}

// ExpectedFalseWitnesses returns E[witnesses(u_i, v_j)], i≠j, in the first
// phase: (n-2)·p²·s²·l — the extra factor p because a third node must be
// adjacent to both i and j.
func (m ERModel) ExpectedFalseWitnesses() float64 {
	return float64(m.N-2) * m.P * m.P * m.S * m.S * m.L
}

// Theorem1Applies reports whether the parameters are in Theorem 1's regime,
// (n-2)·p·s²·l >= 24·ln n, where the gap between true and false witness
// counts separates w.h.p. (The paper's log is natural — the Chernoff
// exponents are base e.)
func (m ERModel) Theorem1Applies() bool {
	return float64(m.N-2)*m.P*m.S*m.S*m.L >= 24*math.Log(float64(m.N))
}

// ConnectivityThresholdP returns the smallest p such that each copy stays
// connected w.h.p.: n·p·s >= c·ln n, i.e. p = c·ln n / (n·s). The paper
// assumes nps > c·log n throughout.
func ConnectivityThresholdP(n int, s, c float64) float64 {
	return c * math.Log(float64(n)) / (float64(n) * s)
}

// ChernoffLowerTail bounds P[X < (1-δ)μ] <= exp(-μδ²/2) for a sum of
// independent Bernoulli variables with mean μ.
func ChernoffLowerTail(mu, delta float64) float64 {
	if delta < 0 || delta > 1 {
		panic("theory: ChernoffLowerTail requires δ in [0,1]")
	}
	return math.Exp(-mu * delta * delta / 2)
}

// ChernoffUpperTail bounds P[X > (1+δ)μ] <= exp(-μδ²/4) for δ in (0, 2e-1),
// the form used in Theorem 1's proof.
func ChernoffUpperTail(mu, delta float64) float64 {
	if delta <= 0 {
		panic("theory: ChernoffUpperTail requires δ > 0")
	}
	return math.Exp(-mu * delta * delta / 4)
}

// PAModel bundles the preferential attachment parameters of Section 4.2.
type PAModel struct {
	N int
	M int
	S float64
	L float64
}

// HighDegreeThreshold returns the degree above which Lemma 11 guarantees
// identification: 4·log²n / (s²·l).
func (m PAModel) HighDegreeThreshold() float64 {
	ln := math.Log(float64(m.N))
	return 4 * ln * ln / (m.S * m.S * m.L)
}

// Lemma12Applies reports whether m·s² >= 22, the regime in which the paper
// proves 97% identification.
func (m PAModel) Lemma12Applies() bool {
	return float64(m.M)*m.S*m.S >= 22
}

// ExpectedGoodEdges returns the expected number of "good" edges of a new
// node in Lemma 12's induction: m·s²·(0.99·0.92) — edges that survive both
// copies and land on an already-identified earlier node.
func (m PAModel) ExpectedGoodEdges() float64 {
	return float64(m.M) * m.S * m.S * 0.99 * 0.92
}

// MapReduceRounds returns the paper's round count O(k·log D): with k sweeps
// and max degree d, 4 MapReduce rounds per bucket.
func MapReduceRounds(k, maxDegree int) int {
	if maxDegree < 2 {
		maxDegree = 2
	}
	logD := int(math.Floor(math.Log2(float64(maxDegree))))
	return 4 * k * logD
}
