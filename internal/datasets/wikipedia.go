package datasets

import (
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// WikipediaData is the cross-language stand-in: two article link graphs that
// are NOT copies of a common parent, a full ground-truth correspondence for
// the shared concepts, and a noisy "inter-language link" subset playing the
// role of Wikipedia's human-curated links (the paper's seeds — incomplete,
// and occasionally wrong, which the paper notes causes part of its measured
// error).
type WikipediaData struct {
	FR *graph.Graph // larger language edition
	DE *graph.Graph // smaller edition
	// Truth maps FR node -> DE node for every concept present in both
	// editions. Nodes outside Truth are language-specific: matching them at
	// all is an error.
	Truth []graph.Pair
	// InterLang is the curated link set: a subset of Truth with a small
	// fraction of corrupted entries (human error). Experiments draw their
	// seeds from it, as the paper seeds from 10% of the real inter-language
	// links.
	InterLang []graph.Pair
}

// Wikipedia builds the FR/DE stand-in. Both editions grow over a shared
// "concept" backbone (a preferential attachment graph — article link graphs
// are heavy-tailed) but each edition keeps only part of the backbone, adds
// its own language-specific articles and link noise, and numbers its
// articles independently. Published sizes: FR 4.36M articles, DE 2.85M; the
// curated link set covers only ~12% of FR articles, and the paper's matcher
// ends at a 17.5% error rate on new links — a regime far harder than the
// shared-parent models, which the stand-in's asymmetries reproduce.
func Wikipedia(r *xrand.Rand, scale float64) *WikipediaData {
	nConcepts := scaledNodes(4362736, scale)
	backbone := gen.PreferentialAttachment(r, nConcepts, 8)

	// Edition membership: FR keeps most concepts; DE is the smaller edition
	// (2.85/4.36 ≈ 0.65 of FR's size).
	inFR := make([]bool, nConcepts)
	inDE := make([]bool, nConcepts)
	frID := make([]graph.NodeID, nConcepts)
	deID := make([]graph.NodeID, nConcepts)
	var nFR, nDE int
	for c := 0; c < nConcepts; c++ {
		if r.Bool(0.92) {
			inFR[c] = true
			frID[c] = graph.NodeID(nFR)
			nFR++
		}
		if r.Bool(0.60) {
			inDE[c] = true
			deID[c] = graph.NodeID(nDE)
			nDE++
		}
	}
	// Language-specific articles: ~8% extra per edition.
	frExtra := nFR / 12
	deExtra := nDE / 12
	totalFR := nFR + frExtra
	totalDE := nDE + deExtra

	buildEdition := func(in []bool, id []graph.NodeID, total int, keepEdge float64) *graph.Builder {
		b := graph.NewBuilder(total, backbone.NumEdges())
		backbone.Edges(func(e graph.Edge) bool {
			if in[e.U] && in[e.V] && r.Bool(keepEdge) {
				b.AddEdge(id[e.U], id[e.V])
			}
			return true
		})
		return b
	}
	// Each edition links concepts it covers with its own weakly overlapping
	// subset of backbone links (editions agree on roughly keepEdge² of the
	// shared-concept links), plus edition-specific noise.
	fb := buildEdition(inFR, frID, totalFR, 0.65)
	db := buildEdition(inDE, deID, totalDE, 0.60)

	addNoise := func(b *graph.Builder, total, count int) {
		for i := 0; i < count; i++ {
			u := graph.NodeID(r.IntN(total))
			v := graph.NodeID(r.IntN(total))
			b.AddEdge(u, v)
		}
	}
	// Language-specific articles wire into the edition; plus general link
	// noise at a third of the backbone volume (editions link prolifically
	// to local-interest articles the other edition lacks).
	for x := 0; x < frExtra; x++ {
		u := graph.NodeID(nFR + x)
		for k := 0; k < 4; k++ {
			fb.AddEdge(u, graph.NodeID(r.IntN(nFR)))
		}
	}
	for x := 0; x < deExtra; x++ {
		u := graph.NodeID(nDE + x)
		for k := 0; k < 4; k++ {
			db.AddEdge(u, graph.NodeID(r.IntN(nDE)))
		}
	}
	addNoise(fb, totalFR, int(float64(backbone.NumEdges())*0.25))
	addNoise(db, totalDE, int(float64(backbone.NumEdges())*0.20))

	// Sibling articles: one edition covers a topic with two closely-linked
	// articles (event vs protagonist — the paper's Lee Harvey Oswald vs
	// assassination example). A sibling copies much of its concept's DE
	// neighborhood and is unmatchable, a principled source of the errors
	// the paper observes.
	deSiblings := 0
	for c := 0; c < nConcepts && deSiblings < nDE/15; c++ {
		if !inDE[c] || !r.Bool(0.1) {
			continue
		}
		sib := graph.NodeID(totalDE + deSiblings)
		db.EnsureNode(sib)
		for _, w := range backbone.Neighbors(graph.NodeID(c)) {
			if inDE[w] && r.Bool(0.6) {
				db.AddEdge(sib, deID[w])
			}
		}
		db.AddEdge(sib, deID[c])
		deSiblings++
	}

	d := &WikipediaData{FR: fb.Build(), DE: db.Build()}
	for c := 0; c < nConcepts; c++ {
		if inFR[c] && inDE[c] {
			d.Truth = append(d.Truth, graph.Pair{Left: frID[c], Right: deID[c]})
		}
	}
	// Curated links: ~80% coverage of the truth, with 4% of entries
	// corrupted to a random DE article (the "human errors in Wikipedia's
	// inter-language links" the paper blames for part of its error rate).
	used := make(map[graph.NodeID]bool, len(d.Truth))
	for _, p := range d.Truth {
		used[p.Right] = true
	}
	for _, p := range d.Truth {
		if !r.Bool(0.8) {
			continue
		}
		if r.Bool(0.04) {
			// Corrupt: retarget to an unused DE node to keep seeds injective.
			for tries := 0; tries < 10; tries++ {
				w := graph.NodeID(r.IntN(d.DE.NumNodes()))
				if !used[w] {
					p.Right = w
					used[w] = true
					break
				}
			}
		}
		d.InterLang = append(d.InterLang, p)
	}
	return d
}
