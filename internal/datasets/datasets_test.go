package datasets

import (
	"bytes"
	"strings"
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestFacebookStats(t *testing.T) {
	g := Facebook(xrand.New(1), 0.2) // ~12.7K nodes
	s := graph.ComputeStats(g)
	t.Logf("facebook stand-in: %v", s)
	if s.Nodes < 12000 || s.Nodes > 13500 {
		t.Fatalf("nodes = %d", s.Nodes)
	}
	// Published avg degree ≈ 48.5; accept a generous band for the stand-in.
	if s.AvgDegree < 30 || s.AvgDegree > 75 {
		t.Errorf("avg degree = %.1f, want ≈ 48", s.AvgDegree)
	}
	// The paper's recall ceiling: roughly 28% of nodes at degree ≤ 5.
	lowFrac := float64(s.DegreeLE5) / float64(s.Nodes)
	if lowFrac < 0.15 || lowFrac > 0.45 {
		t.Errorf("degree<=5 fraction = %.2f, want ≈ 0.28", lowFrac)
	}
	if s.MaxDegree < 10*s.MedDegree {
		t.Errorf("maxdeg=%d meddeg=%d: not skewed", s.MaxDegree, s.MedDegree)
	}
	// The triadic-closure pass must leave measurable clustering — the raw
	// configuration model is locally tree-like (clustering ≈ d̄/n ≈ 0.004),
	// and the matcher's witnesses need triangles to survive the copies.
	if cc := graph.AverageClustering(g, 7); cc < 0.01 {
		t.Errorf("average clustering %.4f; closure pass ineffective", cc)
	}
}

func TestEnronStats(t *testing.T) {
	g := Enron(xrand.New(2), 0.3) // ~11K nodes
	s := graph.ComputeStats(g)
	t.Logf("enron stand-in: %v", s)
	if s.AvgDegree < 10 || s.AvgDegree > 32 {
		t.Errorf("avg degree = %.1f, want ≈ 20", s.AvgDegree)
	}
	lowFrac := float64(s.DegreeLE5) / float64(s.Nodes)
	if lowFrac < 0.45 {
		t.Errorf("degree<=5 fraction = %.2f; Enron is low-degree dominated", lowFrac)
	}
}

func TestAffiliationStandIn(t *testing.T) {
	an := AffiliationStandIn(xrand.New(3), 0.05)
	if an.Users < 2500 || an.Users > 3500 {
		t.Fatalf("users = %d", an.Users)
	}
	g := an.Fold(150)
	s := graph.ComputeStats(g)
	t.Logf("AN stand-in folded: %v", s)
	if s.AvgDegree < 3 {
		t.Errorf("avg degree = %.1f; folded AN should be dense-ish", s.AvgDegree)
	}
}

func TestDBLPShape(t *testing.T) {
	d := DBLP(xrand.New(5), 0.01) // ~44K authors
	if d.Nodes < 40000 {
		t.Fatalf("nodes = %d", d.Nodes)
	}
	if len(d.Edges) == 0 {
		t.Fatal("no temporal edges")
	}
	g1, g2 := d.Split()
	if g1.NumNodes() != d.Nodes || g2.NumNodes() != d.Nodes {
		t.Fatal("split changed node space")
	}
	if g1.NumEdges() == 0 || g2.NumEdges() == 0 {
		t.Fatal("a split side is empty")
	}
	inter := graph.Intersection(g1, g2)
	if inter.NumEdges() == 0 {
		t.Fatal("even/odd copies share no edges; repeat collaborations missing")
	}
	s := graph.ComputeStats(inter)
	lowFrac := float64(s.DegreeLE5) / float64(s.Nodes)
	if lowFrac < 0.7 {
		t.Errorf("intersection degree<=5 fraction = %.2f; DBLP should be low-degree dominated", lowFrac)
	}
	// Year range sanity.
	for _, e := range d.Edges[:10] {
		if e.Time < 1990 || e.Time >= 2014 {
			t.Fatalf("year %d out of range", e.Time)
		}
	}
}

func TestGowallaShape(t *testing.T) {
	d := Gowalla(xrand.New(6), 0.05) // ~9.8K users
	s := graph.ComputeStats(d.Friends)
	t.Logf("gowalla friends: %v", s)
	if s.AvgDegree < 6 || s.AvgDegree > 14 {
		t.Errorf("friendship avg degree = %.1f, want ≈ 9.7", s.AvgDegree)
	}
	g1, g2 := d.Split()
	// Copies must be subgraphs of the friendship graph.
	g1.Edges(func(e graph.Edge) bool {
		if !d.Friends.HasEdge(e.U, e.V) {
			t.Fatalf("copy edge %v not a friendship", e)
		}
		return true
	})
	// The intersection keeps only a minority of nodes (paper: 38K/196K).
	inter := graph.Intersection(g1, g2)
	si := graph.ComputeStats(inter)
	alive := si.Nodes - si.Isolated
	if alive == 0 {
		t.Fatal("empty intersection")
	}
	if float64(alive) > 0.6*float64(s.Nodes) {
		t.Errorf("intersection covers %d/%d nodes; should be a minority", alive, s.Nodes)
	}
}

func TestWikipediaShape(t *testing.T) {
	d := Wikipedia(xrand.New(7), 0.004) // ~17K concepts
	if d.FR.NumNodes() <= d.DE.NumNodes() {
		t.Errorf("FR (%d) should be larger than DE (%d)", d.FR.NumNodes(), d.DE.NumNodes())
	}
	ratio := float64(d.DE.NumNodes()) / float64(d.FR.NumNodes())
	if ratio < 0.45 || ratio > 0.9 {
		t.Errorf("DE/FR size ratio = %.2f, want ≈ 0.65", ratio)
	}
	if len(d.Truth) == 0 || len(d.InterLang) == 0 {
		t.Fatal("missing truth or interlang links")
	}
	if len(d.InterLang) >= len(d.Truth) {
		t.Errorf("interlang (%d) should be a strict subset of truth (%d)", len(d.InterLang), len(d.Truth))
	}
	// Truth pairs must be injective and in-range.
	seenL := map[graph.NodeID]bool{}
	seenR := map[graph.NodeID]bool{}
	for _, p := range d.Truth {
		if int(p.Left) >= d.FR.NumNodes() || int(p.Right) >= d.DE.NumNodes() {
			t.Fatalf("truth pair %v out of range", p)
		}
		if seenL[p.Left] || seenR[p.Right] {
			t.Fatalf("truth pair %v duplicates an endpoint", p)
		}
		seenL[p.Left] = true
		seenR[p.Right] = true
	}
	// InterLang must be injective (it seeds the matcher).
	seenL = map[graph.NodeID]bool{}
	seenR = map[graph.NodeID]bool{}
	for _, p := range d.InterLang {
		if seenL[p.Left] || seenR[p.Right] {
			t.Fatalf("interlang pair %v duplicates an endpoint", p)
		}
		seenL[p.Left] = true
		seenR[p.Right] = true
	}
	// Some corruption should exist (noisy links), but only a small fraction.
	truth := map[graph.NodeID]graph.NodeID{}
	for _, p := range d.Truth {
		truth[p.Left] = p.Right
	}
	bad := 0
	for _, p := range d.InterLang {
		if truth[p.Left] != p.Right {
			bad++
		}
	}
	frac := float64(bad) / float64(len(d.InterLang))
	if frac > 0.05 {
		t.Errorf("interlang corruption %.3f too high", frac)
	}
}

func TestScalePanics(t *testing.T) {
	for _, bad := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v did not panic", bad)
				}
			}()
			Facebook(xrand.New(1), bad)
		}()
	}
}

func TestTable1Published(t *testing.T) {
	if len(Table1) != 11 {
		t.Fatalf("Table1 has %d entries, want 11", len(Table1))
	}
	for _, d := range Table1 {
		if d.Nodes <= 0 || d.Edges <= 0 || d.Name == "" {
			t.Fatalf("bad Table1 entry %+v", d)
		}
	}
}

func TestTemporalRoundTrip(t *testing.T) {
	d := DBLP(xrand.New(8), 0.0005)
	var buf bytes.Buffer
	if err := WriteTemporalEdgeList(&buf, d.Nodes, d.Edges); err != nil {
		t.Fatal(err)
	}
	n, edges, ids, err := ReadTemporalEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != len(d.Edges) {
		t.Fatalf("events %d, want %d", len(edges), len(d.Edges))
	}
	if n != len(ids) {
		t.Fatalf("n=%d ids=%d", n, len(ids))
	}
	// Times survive verbatim; endpoints survive up to the dense remapping.
	for i := range edges {
		if edges[i].Time != d.Edges[i].Time {
			t.Fatalf("event %d time %d, want %d", i, edges[i].Time, d.Edges[i].Time)
		}
		if ids[edges[i].U] != int64(d.Edges[i].U) || ids[edges[i].V] != int64(d.Edges[i].V) {
			t.Fatalf("event %d endpoints remapped wrongly", i)
		}
	}
}

func TestTemporalReadErrors(t *testing.T) {
	cases := map[string]string{
		"two fields":  "1 2\n",
		"bad u":       "x 2 3\n",
		"bad v":       "1 x 3\n",
		"bad t":       "1 2 x\n",
		"negative id": "-1 2 3\n",
	}
	for name, in := range cases {
		if _, _, _, err := ReadTemporalEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPairsRoundTrip(t *testing.T) {
	pairs := []graph.Pair{{Left: 1, Right: 2}, {Left: 30, Right: 40}}
	var buf bytes.Buffer
	if err := WritePairs(&buf, pairs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != pairs[0] || got[1] != pairs[1] {
		t.Fatalf("round trip = %v", got)
	}
}

func TestReadPairsErrors(t *testing.T) {
	for name, in := range map[string]string{
		"one field": "5\n",
		"bad left":  "x 2\n",
		"bad right": "1 x\n",
	} {
		if _, err := ReadPairs(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
