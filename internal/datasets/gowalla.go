package datasets

import (
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

// GowallaData is the location-based stand-in: a friendship graph plus
// month-stamped co-check-in events between friends. The paper's two copies
// keep a friendship edge iff the pair checked in at approximately the same
// location in an odd (respectively even) month.
type GowallaData struct {
	Friends *graph.Graph
	// CoCheckins holds one event per (edge, month) at which the two friends
	// were co-located; Time is the month index.
	CoCheckins []sampling.TemporalEdge
}

// Gowalla builds the Gowalla stand-in (196,591 users, 950,327 friendship
// edges — average degree ≈ 9.7). Friendships come from preferential
// attachment at the published density. Co-check-in behaviour in location
// data is skewed per USER, not per edge: a minority of heavy users check in
// constantly and co-occur with most of their friends, while the majority
// rarely co-occur with anyone. That concentration is what gives the paper's
// intersection its shape — only 38K of 196K users present, over 32K of them
// at degree ≤ 5, yet ~6K users with degree > 5 of which the matcher
// identifies over 4K.
func Gowalla(r *xrand.Rand, scale float64) *GowallaData {
	n := scaledNodes(196591, scale)
	friends := gen.PreferentialAttachment(r, n, 5)
	d := &GowallaData{Friends: friends}
	// Per-user activity: ~40% of users are active checkers-in.
	active := make([]bool, n)
	for v := range active {
		active[v] = r.Bool(0.40)
	}
	const months = 24
	friends.Edges(func(e graph.Edge) bool {
		// Event count by joint activity: two active friends co-occur
		// repeatedly; an active/passive pair occasionally; two passive
		// friends almost never.
		var k int
		switch {
		case active[e.U] && active[e.V]:
			k = 2 + r.Geometric(0.22) // mean ≈ 5.5 events
		case active[e.U] || active[e.V]:
			if r.Bool(0.10) {
				k = 1 + r.Geometric(0.60)
			}
		default:
			if r.Bool(0.01) {
				k = 1
			}
		}
		for i := 0; i < k; i++ {
			d.CoCheckins = append(d.CoCheckins, sampling.TemporalEdge{
				U: e.U, V: e.V, Time: r.IntN(months),
			})
		}
		return true
	})
	return d
}

// Split returns the odd-month and even-month co-check-in graphs of Table 5
// (top right).
func (d *GowallaData) Split() (*graph.Graph, *graph.Graph) {
	odd, even := sampling.TimeSplit(d.Friends.NumNodes(), d.CoCheckins, func(t int) bool { return t%2 == 1 })
	return odd, even
}
