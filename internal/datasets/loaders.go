package datasets

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
)

// Temporal edge-list I/O: "u v t" per line, '#' comments — the format we use
// to persist DBLP/Gowalla-style timestamped data, and the shape of SNAP's
// temporal datasets. Static edge lists are handled by graph.ReadEdgeList.

// ReadTemporalEdgeList parses "u v t" lines from r. Node IDs are remapped to
// dense IDs in first-appearance order; ids maps dense ID back to the input
// ID; n is the number of distinct nodes.
func ReadTemporalEdgeList(rd io.Reader) (n int, edges []sampling.TemporalEdge, ids []int64, err error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	remap := make(map[int64]graph.NodeID)
	lookup := func(raw int64) graph.NodeID {
		if id, ok := remap[raw]; ok {
			return id
		}
		id := graph.NodeID(len(ids))
		remap[raw] = id
		ids = append(ids, raw)
		return id
	}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return 0, nil, nil, fmt.Errorf("datasets: line %d: want 3 fields, got %d", lineno, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || u < 0 {
			return 0, nil, nil, fmt.Errorf("datasets: line %d: bad node id %q", lineno, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || v < 0 {
			return 0, nil, nil, fmt.Errorf("datasets: line %d: bad node id %q", lineno, fields[1])
		}
		t, err := strconv.Atoi(fields[2])
		if err != nil {
			return 0, nil, nil, fmt.Errorf("datasets: line %d: bad timestamp %q", lineno, fields[2])
		}
		edges = append(edges, sampling.TemporalEdge{U: lookup(u), V: lookup(v), Time: t})
	}
	if err := sc.Err(); err != nil {
		return 0, nil, nil, fmt.Errorf("datasets: reading temporal edges: %w", err)
	}
	return len(ids), edges, ids, nil
}

// WriteTemporalEdgeList writes edges as "u v t" lines with a header comment.
func WriteTemporalEdgeList(w io.Writer, n int, edges []sampling.TemporalEdge) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# temporal graph: %d nodes, %d events\n", n, len(edges)); err != nil {
		return err
	}
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", e.U, e.V, e.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPairs parses a seed/links file: "left right" per line, '#' comments,
// IDs taken verbatim as dense node IDs (use after the graphs are densified).
func ReadPairs(rd io.Reader) ([]graph.Pair, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []graph.Pair
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("datasets: line %d: want 2 fields, got %d", lineno, len(fields))
		}
		l, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("datasets: line %d: bad left id %q", lineno, fields[0])
		}
		r, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("datasets: line %d: bad right id %q", lineno, fields[1])
		}
		out = append(out, graph.Pair{Left: graph.NodeID(l), Right: graph.NodeID(r)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("datasets: reading pairs: %w", err)
	}
	return out, nil
}

// WritePairs writes links as "left right" lines.
func WritePairs(w io.Writer, pairs []graph.Pair) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# identification links: %d pairs\n", len(pairs)); err != nil {
		return err
	}
	for _, p := range pairs {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", p.Left, p.Right); err != nil {
			return err
		}
	}
	return bw.Flush()
}
