// Package datasets provides the evaluation datasets of Section 5.
//
// The paper's real datasets (Facebook/WOSN'09, Enron, DBLP, Gowalla, the
// French and German Wikipedia link graphs) are multi-gigabyte downloads or
// proprietary snapshots; this module is built offline, so for each of them
// we generate a synthetic stand-in calibrated to the published statistics of
// Table 1 (node count, edge count, degree shape) — NOT to the behaviour of
// our own algorithm. Loaders for the real SNAP edge-list formats are
// provided so the experiment harness runs unchanged on genuine data when it
// is available. Every substitution is documented in DESIGN.md §4.
//
// All generators accept a scale in (0, 1]: the stand-in's node count is
// scale × the paper's node count. Experiments default to laptop-friendly
// scales; raise them via cmd/experiments flags.
package datasets

import (
	"fmt"

	"github.com/sociograph/reconcile/internal/xrand"
)

// PaperStats records a dataset's published size (Table 1 of the paper).
type PaperStats struct {
	Name  string
	Nodes int
	Edges int64
}

// Table1 lists the paper's datasets exactly as published.
var Table1 = []PaperStats{
	{"PA", 1000000, 20000000},
	{"RMAT24", 8871645, 520757402},
	{"RMAT26", 32803311, 2103850648},
	{"RMAT28", 121228778, 8472338793},
	{"AN", 60026, 8069546},
	{"Facebook", 63731, 1545686},
	{"DBLP", 4388906, 2778941},
	{"Enron", 36692, 367662},
	{"Gowalla", 196591, 950327},
	{"French Wikipedia", 4362736, 141311515},
	{"German Wikipedia", 2851252, 81467497},
}

// scaledNodes converts a paper node count to a stand-in size.
func scaledNodes(paperNodes int, scale float64) int {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("datasets: scale %v outside (0, 1]", scale))
	}
	n := int(float64(paperNodes) * scale)
	if n < 10 {
		n = 10
	}
	return n
}

// powerLawMixtureDegrees samples a social-network degree sequence as a
// mixture: lowFrac of the nodes draw uniformly from [1, 5] (the "extremely
// low degree" mass the paper highlights), the rest from a truncated power
// law rescaled so the blended average hits targetAvg — the calibration knob
// that pins each stand-in to its dataset's published edge density. The sum
// is forced even for configuration-model construction.
func powerLawMixtureDegrees(r *xrand.Rand, n int, lowFrac, targetAvg float64, alpha float64, dmin, dmax int) []int {
	degs := make([]int, n)
	hi := r.PowerLawDegrees(n, dmin, dmax, alpha) // superset; we use entries as needed
	var sumLow, sumHigh int
	for i := 0; i < n; i++ {
		if r.Bool(lowFrac) {
			degs[i] = -(1 + r.IntN(5)) // negative marks the low component
			sumLow += -degs[i]
		} else {
			degs[i] = hi[i]
			sumHigh += degs[i]
		}
	}
	// Rescale the high component to reach the target mean. The truncated
	// power law keeps its shape under multiplicative scaling (exponent is
	// unchanged); only dmin shifts upward.
	factor := 1.0
	if sumHigh > 0 {
		factor = (targetAvg*float64(n) - float64(sumLow)) / float64(sumHigh)
		if factor < 1 {
			factor = 1
		}
	}
	sum := 0
	for i := range degs {
		if degs[i] < 0 {
			degs[i] = -degs[i]
		} else {
			d := int(float64(degs[i]) * factor)
			if d > n-1 {
				d = n - 1
			}
			degs[i] = d
		}
		sum += degs[i]
	}
	if sum%2 == 1 {
		degs[0]++
	}
	return degs
}
