package datasets

import (
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// Facebook builds the stand-in for the WOSN'09 Facebook snapshot
// (63,731 nodes, 1.55M edges, average degree ≈ 48.5, with roughly 28% of
// nodes at degree ≤ 5). The degree sequence is a low-degree/power-law
// mixture matched to those statistics, realized by the configuration model,
// then one triadic-closure pass adds the local clustering a friendship graph
// carries (the matcher's witnesses live on cross-copy triangles, so the
// stand-in must not be locally tree-like).
func Facebook(r *xrand.Rand, scale float64) *graph.Graph {
	n := scaledNodes(63731, scale)
	dmax := n / 20
	if dmax < 50 {
		dmax = 50
	}
	// 28% low-degree mass; the power-law component is calibrated so the
	// blended average matches the published 48.5 (2·1545686/63731).
	degs := powerLawMixtureDegrees(r, n, 0.28, 46.5, 2.1, 6, dmax)
	g := gen.ConfigurationModel(r, degs)
	return gen.TriadicClosure(r, g, 1, 0.5)
}

// Enron builds the stand-in for the Enron email network (36,692 nodes,
// 367,662 edges, average degree ≈ 20, dominated by low-degree nodes — the
// paper notes the graph is much sparser than real social networks and that
// over 18,000 of the intersection's 21,624 nodes have degree ≤ 5).
func Enron(r *xrand.Rand, scale float64) *graph.Graph {
	n := scaledNodes(36692, scale)
	dmax := n / 15
	if dmax < 40 {
		dmax = 40
	}
	degs := powerLawMixtureDegrees(r, n, 0.62, 20, 2.15, 6, dmax)
	return gen.ConfigurationModel(r, degs)
}

// AffiliationStandIn builds the AN dataset analogue (60,026 users whose
// folded projection has 8.07M edges — a dense overlapping-community graph)
// at the given scale, returning the bipartite structure so the correlated
// deletion experiment can drop whole interests.
func AffiliationStandIn(r *xrand.Rand, scale float64) *gen.AffiliationNetwork {
	users := scaledNodes(60026, scale)
	p := gen.DefaultAffiliation(users)
	return gen.Affiliation(r, p)
}
