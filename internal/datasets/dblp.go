package datasets

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

// DBLPData is the temporal co-authorship stand-in: the node count and the
// year-stamped co-authorship edges. The paper builds its two copies from
// publications in even vs odd years; reproduce that with
// sampling.TimeSplit(d.Nodes, d.Edges, sampling.EvenOdd).
type DBLPData struct {
	Nodes int
	Edges []sampling.TemporalEdge
}

// DBLP builds the DBLP stand-in. The published graph has 4.39M author nodes
// and only 2.78M co-authorship edges — extremely sparse, with the great
// majority of authors at degree ≤ 5 in the even/odd intersection; the paper
// reports over 310K of the 380K intersection nodes below degree 5.
//
// Generation mimics how co-authorship arises: "papers" are written by small
// author groups in some year; prolific authors recur on many papers
// (preferential selection), producing the heavy-tailed collaboration counts
// of the real DBLP. Each paper contributes a clique among its authors
// stamped with its year, and repeat collaborations across years naturally
// put the same pair into both the even and the odd copy — the overlap the
// matcher depends on.
func DBLP(r *xrand.Rand, scale float64) *DBLPData {
	n := scaledNodes(4388906, scale)
	// Papers-per-author and authors-per-paper tuned to land near the
	// published edge/node ratio (~0.63 edges per node) after clique folding
	// and deduplication.
	nPapers := int(float64(n) * 0.55)
	d := &DBLPData{Nodes: n}
	// Author-selection slots: each authorship occurrence appends the author,
	// so a uniform draw over slots is collaboration-proportional — prolific
	// authors keep publishing.
	slots := make([]graph.NodeID, 0, nPapers*2)
	// Past author groups: research groups publish repeatedly across years,
	// which is what puts the same co-author pair into both the even and the
	// odd copy. Without group recurrence the two copies would share almost
	// no edges and reconciliation would be impossible — as it would be on a
	// DBLP where every collaboration happened exactly once.
	var groups [][]graph.NodeID
	const yearLo, yearHi = 1990, 2014
	for p := 0; p < nPapers; p++ {
		year := yearLo + r.IntN(yearHi-yearLo)
		var authors []graph.NodeID
		if len(groups) > 0 && r.Bool(0.5) {
			// An existing group publishes again, sometimes gaining a member.
			prev := groups[r.IntN(len(groups))]
			authors = append(authors, prev...)
			if r.Bool(0.3) {
				extra := graph.NodeID(r.IntN(n))
				dup := false
				for _, a := range authors {
					if a == extra {
						dup = true
						break
					}
				}
				if !dup {
					authors = append(authors, extra)
					slots = append(slots, extra)
				}
			}
		} else {
			// A fresh collaboration: mostly 1-3 authors, occasionally more.
			k := 1 + r.Geometric(0.45)
			if k > 8 {
				k = 8
			}
			seen := map[graph.NodeID]bool{}
			for i := 0; i < k; i++ {
				var a graph.NodeID
				// 45%: a uniformly random author (fresh entrants); otherwise
				// recur a previous author preferentially.
				if len(slots) == 0 || r.Bool(0.45) {
					a = graph.NodeID(r.IntN(n))
				} else {
					a = slots[r.IntN(len(slots))]
				}
				if seen[a] {
					continue
				}
				seen[a] = true
				authors = append(authors, a)
				slots = append(slots, a)
			}
		}
		groups = append(groups, authors)
		for i := 0; i < len(authors); i++ {
			for j := i + 1; j < len(authors); j++ {
				d.Edges = append(d.Edges, sampling.TemporalEdge{U: authors[i], V: authors[j], Time: year})
			}
		}
	}
	return d
}

// Split returns the even-year and odd-year co-authorship graphs, the
// construction of Table 5 (top left).
func (d *DBLPData) Split() (*graph.Graph, *graph.Graph) {
	return sampling.TimeSplit(d.Nodes, d.Edges, sampling.EvenOdd)
}
