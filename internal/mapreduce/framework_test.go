package mapreduce

import (
	"strings"
	"testing"
)

func wordCount(cfg Config, docs []string) []KV[string, int] {
	return Run(cfg, docs,
		func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		func(word string, counts []int, emit func(KV[string, int])) {
			sum := 0
			for _, c := range counts {
				sum += c
			}
			emit(KV[string, int]{word, sum})
		})
}

func TestWordCount(t *testing.T) {
	docs := []string{"a b a", "b c", "a"}
	got := wordCount(Config{Workers: 2}, docs)
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for _, kv := range got {
		if want[kv.Key] != kv.Value {
			t.Fatalf("word %q count %d, want %d", kv.Key, kv.Value, want[kv.Key])
		}
	}
	// Deterministic order: first-appearance order of keys.
	if got[0].Key != "a" || got[1].Key != "b" || got[2].Key != "c" {
		t.Fatalf("key order %v, want a b c", got)
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	docs := []string{"x y z", "z y", "w x y z", "q", "z q w"}
	base := wordCount(Config{Workers: 1}, docs)
	for _, w := range []int{2, 3, 8} {
		got := wordCount(Config{Workers: w}, docs)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: result %d = %v, want %v", w, i, got[i], base[i])
			}
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	got := wordCount(Config{Workers: 4}, nil)
	if len(got) != 0 {
		t.Fatalf("empty input produced %v", got)
	}
}

func TestMapperEmittingNothing(t *testing.T) {
	got := Run(Config{Workers: 2}, []int{1, 2, 3},
		func(in int, emit func(int, int)) {},
		func(k int, vs []int, emit func(int)) { emit(k) })
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestReducerMultiEmit(t *testing.T) {
	// A reducer may emit several results per key.
	got := Run(Config{Workers: 2}, []int{5},
		func(in int, emit func(string, int)) { emit("k", in) },
		func(k string, vs []int, emit func(int)) {
			for _, v := range vs {
				emit(v)
				emit(v * 10)
			}
		})
	if len(got) != 2 || got[0] != 5 || got[1] != 50 {
		t.Fatalf("got %v", got)
	}
}

func TestWorkersClampedToOne(t *testing.T) {
	got := wordCount(Config{Workers: -3}, []string{"a a"})
	if len(got) != 1 || got[0].Value != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestGroupingPreservesValueOrderWithinInput(t *testing.T) {
	// Values for a key arrive in input order (per-input emission order).
	got := Run(Config{Workers: 1}, []int{0, 1, 2},
		func(in int, emit func(string, int)) { emit("k", in) },
		func(k string, vs []int, emit func([]int)) {
			cp := append([]int(nil), vs...)
			emit(cp)
		})
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got[0] {
		if v != i {
			t.Fatalf("value order %v", got[0])
		}
	}
}
