package mapreduce

import (
	"testing"

	"github.com/sociograph/reconcile/internal/core"
)

// The MapReduce formulation must track the in-core engines under the
// non-default selection policies too: weighted scoring, margins, and the
// greedy tie policy.
func TestMapReduceMatchesCoreUnderVariants(t *testing.T) {
	g1, g2, seeds := instance(41, 300)
	variants := []core.Options{
		func() core.Options {
			o := core.DefaultOptions()
			o.Scoring = core.ScoreAdamicAdar
			return o
		}(),
		func() core.Options {
			o := core.DefaultOptions()
			o.MinMargin = 1
			return o
		}(),
		func() core.Options {
			o := core.DefaultOptions()
			o.Threshold = 1
			o.Ties = core.TieLowestID
			return o
		}(),
		func() core.Options {
			o := core.DefaultOptions()
			o.Scoring = core.ScoreAdamicAdar
			o.MinMargin = 2
			o.DisableBucketing = true
			return o
		}(),
	}
	for i, opts := range variants {
		opts.Engine = core.EngineSequential
		want, err := core.Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		got, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		ws, gs := toSet(want.Pairs), toSet(got.Pairs)
		if len(ws) != len(gs) {
			t.Fatalf("variant %d: core %d pairs, mapreduce %d", i, len(ws), len(gs))
		}
		for p := range ws {
			if !gs[p] {
				t.Fatalf("variant %d: pair %v missing from mapreduce result", i, p)
			}
		}
	}
}
