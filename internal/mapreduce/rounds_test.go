package mapreduce

import (
	"testing"
	"testing/quick"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

func instance(seed uint64, n int) (*graph.Graph, *graph.Graph, []graph.Pair) {
	r := xrand.New(seed)
	g := gen.PreferentialAttachment(r, n, 5)
	g1, g2 := sampling.IndependentCopies(r, g, 0.7, 0.7)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.15)
	return g1, g2, seeds
}

func toSet(ps []graph.Pair) map[graph.Pair]bool {
	s := make(map[graph.Pair]bool, len(ps))
	for _, p := range ps {
		s[p] = true
	}
	return s
}

func TestMapReduceMatchesCoreEngines(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g1, g2, seeds := instance(seed, 250)
		opts := core.DefaultOptions()
		opts.Engine = core.EngineSequential
		want, err := core.Reconcile(g1, g2, seeds, opts)
		if err != nil {
			return false
		}
		got, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			return false
		}
		ws, gs := toSet(want.Pairs), toSet(got.Pairs)
		if len(ws) != len(gs) {
			return false
		}
		for p := range ws {
			if !gs[p] {
				return false
			}
		}
		// Phase-by-phase agreement, not just the final set.
		if len(want.Phases) != len(got.Phases) {
			return false
		}
		for i := range want.Phases {
			if want.Phases[i] != got.Phases[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 6})
	if err != nil {
		t.Error(err)
	}
}

func TestMapReduceDeterministicAcrossWorkers(t *testing.T) {
	g1, g2, seeds := instance(3, 300)
	opts := core.DefaultOptions()
	var base *core.Result
	for _, w := range []int{1, 2, 7} {
		opts.Workers = w
		res, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if len(res.Pairs) != len(base.Pairs) {
			t.Fatalf("workers=%d: %d pairs, want %d", w, len(res.Pairs), len(base.Pairs))
		}
		for i := range base.Pairs {
			if res.Pairs[i] != base.Pairs[i] {
				t.Fatalf("workers=%d: pair %d differs", w, i)
			}
		}
	}
}

func TestMapReduceInputErrors(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := Reconcile(nil, g, nil, core.DefaultOptions()); err == nil {
		t.Error("nil g1 accepted")
	}
	if _, err := Reconcile(g, nil, nil, core.DefaultOptions()); err == nil {
		t.Error("nil g2 accepted")
	}
	if _, err := Reconcile(g, g, nil, core.Options{}); err == nil {
		t.Error("zero options accepted")
	}
	if _, err := Reconcile(g, g, []graph.Pair{{Left: 7, Right: 0}}, core.DefaultOptions()); err == nil {
		t.Error("bad seed accepted")
	}
}

func TestMapReduceEmpty(t *testing.T) {
	e := graph.FromEdges(0, nil)
	res, err := Reconcile(e, e, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatal("empty graphs produced pairs")
	}
}

func TestMapReduceIdentifiesPA(t *testing.T) {
	r := xrand.New(11)
	n := 800
	g := gen.PreferentialAttachment(r, n, 10)
	g1, g2 := sampling.IndependentCopies(r, g, 0.8, 0.8)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.15)
	opts := core.DefaultOptions()
	opts.Threshold = 3
	res, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	correct, wrong := 0, 0
	for _, p := range res.NewPairs {
		if p.Left == p.Right {
			correct++
		} else {
			wrong++
		}
	}
	if correct < 400 {
		t.Errorf("correct = %d; expected substantial recall", correct)
	}
	if wrong*50 > correct {
		t.Errorf("wrong = %d vs correct = %d", wrong, correct)
	}
}
