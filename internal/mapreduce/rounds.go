package mapreduce

import (
	"fmt"
	"math"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/graph"
)

// User-Matching as MapReduce rounds (Section 3.2: "the internal for loop can
// be implemented efficiently with 4 consecutive rounds of MapReduce, so the
// total running time would consist of O(k·logD) MapReductions").
//
// One degree bucket runs as:
//
//	round 1 — witness emission: map over the current link set L; the pair
//	    (u1, u2) emits a witness for every eligible candidate pair
//	    (v1, v2) ∈ N1(u1) × N2(u2);
//	round 2 — score aggregation: reduce witnesses by candidate pair to the
//	    similarity score (fused with round 1's shuffle here, exactly the
//	    sum-reduce a MapReduce system would run);
//	round 3 — per-node maxima: each scored pair is re-keyed under both of
//	    its endpoints; the reduce keeps a node's best proposal subject to
//	    the threshold, tie policy, and margin;
//	round 4 — mutual join: proposals are keyed by candidate pair; a pair
//	    survives iff both endpoints proposed it, and is added to L.

// pairKey identifies a candidate pair across rounds.
type pairKey struct {
	v1, v2 graph.NodeID
}

// nodeKey identifies one endpoint of the bipartite candidate space:
// side 0 = left (G1), side 1 = right (G2).
type nodeKey struct {
	side int
	node graph.NodeID
}

// witness is one round-1 emission: a single vote with its Adamic-Adar
// weight (the weight is ignored under count scoring).
type witness struct {
	votes  int32
	weight float32
}

// scored is a candidate pair with its aggregated score.
type scored struct {
	pair   pairKey
	votes  int32
	weight float32
}

// Reconcile runs User-Matching with every bucket pass executed as the four
// MapReduce rounds above. Results are identical to core.Reconcile under the
// same options (tested for equivalence); the Engine field of opts is
// ignored.
func Reconcile(g1, g2 *graph.Graph, seeds []graph.Pair, opts core.Options) (*core.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if g1 == nil || g2 == nil {
		return nil, fmt.Errorf("mapreduce: nil graph")
	}
	m, err := core.NewMatching(g1.NumNodes(), g2.NumNodes(), seeds)
	if err != nil {
		return nil, err
	}
	cfg := Config{Workers: opts.Workers}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	res := &core.Result{Seeds: m.SeedCount()}
	buckets := opts.BucketSchedule(g1, g2)
	for iter := 1; iter <= opts.Iterations; iter++ {
		for _, minDeg := range buckets {
			matches := bucketRounds(cfg, g1, g2, m, minDeg, opts)
			for _, p := range matches {
				if err := m.Add(p); err != nil {
					// Cannot happen: round 4 guarantees unique endpoints.
					return nil, fmt.Errorf("mapreduce: internal: %w", err)
				}
			}
			res.Phases = append(res.Phases, core.PhaseStat{
				Iteration: iter,
				MinDegree: minDeg,
				Matched:   len(matches),
				TotalL:    m.Len(),
			})
			res.Totals.Buckets++
			res.Totals.Matched += len(matches)
		}
	}
	res.Pairs = m.Pairs()
	res.NewPairs = m.NewPairs()
	return res, nil
}

// bucketRounds executes the four rounds for one degree bucket and returns
// the accepted pairs.
func bucketRounds(cfg Config, g1, g2 *graph.Graph, m *core.Matching, minDeg int, opts core.Options) []graph.Pair {
	threshold := int32(opts.Threshold)
	minMargin := int32(opts.MinMargin)
	weighted := opts.Scoring == core.ScoreAdamicAdar
	ties := opts.Ties
	eligible1 := func(v graph.NodeID) bool {
		return m.LeftMatch(v) == core.NoMatch && g1.Degree(v) >= minDeg
	}
	eligible2 := func(v graph.NodeID) bool {
		return m.RightMatch(v) == core.NoMatch && g2.Degree(v) >= minDeg
	}

	// Rounds 1+2: witness emission and score aggregation. The mapper runs
	// over the link set; the shuffle+reduce sums witnesses per candidate
	// pair.
	links := m.Pairs()
	scoredPairs := Run(cfg, links,
		func(link graph.Pair, emit func(pairKey, witness)) {
			wt := float32(1 / math.Log2(float64(2+maxInt(g1.Degree(link.Left), g2.Degree(link.Right)))))
			for _, v1 := range g1.Neighbors(link.Left) {
				if !eligible1(v1) {
					continue
				}
				for _, v2 := range g2.Neighbors(link.Right) {
					if !eligible2(v2) {
						continue
					}
					emit(pairKey{v1, v2}, witness{votes: 1, weight: wt})
				}
			}
		},
		func(key pairKey, ws []witness, emit func(scored)) {
			out := scored{pair: key}
			for _, w := range ws {
				out.votes += w.votes
				out.weight += w.weight
			}
			emit(out)
		})

	// Round 3: per-node maxima under the configured ranking, tie policy,
	// threshold and margin — the same selection core.scorer.bestFor makes.
	proposals := Run(cfg, scoredPairs,
		func(s scored, emit func(nodeKey, scored)) {
			emit(nodeKey{0, s.pair.v1}, s)
			emit(nodeKey{1, s.pair.v2}, s)
		},
		func(key nodeKey, cands []scored, emit func(scored)) {
			rank := func(c scored) float64 {
				if weighted {
					return float64(c.weight)
				}
				return float64(c.votes)
			}
			partner := func(c scored) graph.NodeID {
				if key.side == 0 {
					return c.pair.v2
				}
				return c.pair.v1
			}
			best := cands[0]
			bestKey := rank(best)
			tie := false
			for _, c := range cands[1:] {
				k := rank(c)
				switch {
				case k > bestKey:
					best, bestKey = c, k
					tie = false
				case k == bestKey:
					if ties == core.TieLowestID && partner(c) < partner(best) {
						best = c
					}
					tie = true
				}
			}
			var maxOther int32
			for _, c := range cands {
				if c.pair != best.pair && c.votes > maxOther {
					maxOther = c.votes
				}
			}
			switch {
			case best.votes < threshold:
				return
			case tie && ties == core.TieReject:
				return
			case minMargin > 0 && best.votes-maxOther < minMargin:
				return
			}
			emit(best)
		})

	// Round 4: mutual join. A pair proposed by both endpoints is a match.
	return Run(cfg, proposals,
		func(s scored, emit func(pairKey, struct{})) {
			emit(s.pair, struct{}{})
		},
		func(key pairKey, votes []struct{}, emit func(graph.Pair)) {
			if len(votes) == 2 {
				emit(graph.Pair{Left: key.v1, Right: key.v2})
			}
		})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
