// Package mapreduce provides a small in-memory MapReduce framework and the
// paper's formulation of User-Matching as O(k·log D) rounds of 4 consecutive
// MapReductions each — the distributed shape the authors run at
// Twitter/Facebook scale. The framework executes map tasks on a goroutine
// pool and groups deterministically (by input order), so the MapReduce
// engine produces bit-identical results to the in-core engines; the
// equivalence is tested.
package mapreduce

import (
	"sync"
)

// KV is a key-value pair flowing between the map and reduce stages.
type KV[K comparable, V any] struct {
	Key   K
	Value V
}

// Config controls execution.
type Config struct {
	// Workers bounds map- and reduce-stage parallelism; values < 1 mean 1.
	Workers int
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// Run executes one MapReduce job:
//
//   - mapper is applied to every input, emitting intermediate key-value
//     pairs;
//   - pairs are grouped by key (the shuffle);
//   - reducer is applied to each key group, emitting results.
//
// Grouping order is the first-appearance order of keys in input order, and
// results are concatenated in that order, so Run is deterministic for any
// worker count.
func Run[I any, K comparable, V any, R any](
	cfg Config,
	inputs []I,
	mapper func(in I, emit func(K, V)),
	reducer func(key K, values []V, emit func(R)),
) []R {
	// Map phase: per-input emission buffers keep grouping deterministic.
	emitted := make([][]KV[K, V], len(inputs))
	parallelFor(cfg.workers(), len(inputs), func(i int) {
		var buf []KV[K, V]
		mapper(inputs[i], func(k K, v V) {
			buf = append(buf, KV[K, V]{k, v})
		})
		emitted[i] = buf
	})

	// Shuffle: group values by key in first-appearance order.
	index := make(map[K]int)
	var keys []K
	var groups [][]V
	for _, buf := range emitted {
		for _, kv := range buf {
			gi, ok := index[kv.Key]
			if !ok {
				gi = len(keys)
				index[kv.Key] = gi
				keys = append(keys, kv.Key)
				groups = append(groups, nil)
			}
			groups[gi] = append(groups[gi], kv.Value)
		}
	}

	// Reduce phase: per-key output buffers, concatenated in key order.
	outs := make([][]R, len(keys))
	parallelFor(cfg.workers(), len(keys), func(i int) {
		var buf []R
		reducer(keys[i], groups[i], func(r R) {
			buf = append(buf, r)
		})
		outs[i] = buf
	})
	var results []R
	for _, o := range outs {
		results = append(results, o...)
	}
	return results
}

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines,
// assigning contiguous chunks.
func parallelFor(workers, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
