package reconcile

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/snapshot"
)

// Durable sessions: a Reconciler's complete state — graphs, matching, seed
// boundary, bucket-schedule position, and the frontier engine's scheduling
// caches — serializes to a versioned, checksummed binary snapshot and
// restores to a Reconciler whose future output is bit-identical to the
// original's, even when the snapshot was taken mid-run at a bucket boundary.
// That is the crash-safety contract production runs need: hours of matching
// work survive process death, and a restored run finishes exactly as the
// uninterrupted one would have (pinned by the resume-equivalence and
// snapshot fuzz suites). cmd/serve builds its -data-dir job store on this
// API.

// Snapshot writes the Reconciler's complete state — both graphs and all
// session state — as one self-contained snapshot. It may be called between
// runs, or from inside a progress hook (which runs synchronously at a bucket
// boundary on the run's own goroutine); it must not be called concurrently
// with a run from another goroutine.
func (r *Reconciler) Snapshot(w io.Writer) error {
	g1, g2 := r.sess.Graphs()
	return snapshot.Write(w, g1, g2, r.sess.ExportState())
}

// SnapshotState writes only the mutable session state, for stores that
// persist the immutable graphs once (WriteGraphBinary) and checkpoint
// repeatedly: a state snapshot is O(links + frontier cache) however large
// the graphs are. Restore the pair with RestoreState. The same calling rules
// as Snapshot apply.
func (r *Reconciler) SnapshotState(w io.Writer) error {
	return snapshot.WriteState(w, r.sess.ExportState())
}

// Graphs returns the two networks the Reconciler was built over. The graphs
// are immutable and shared, not copied.
func (r *Reconciler) Graphs() (g1, g2 *Graph) { return r.sess.Graphs() }

// Sweeps returns the number of bucket sweeps started so far, across runs and
// restores. Together with Options().Iterations it locates a restored run in
// its schedule; Resume uses it to finish exactly what remains.
func (r *Reconciler) Sweeps() int { return r.sess.Sweeps() }

// Resume finishes the configured schedule from wherever the Reconciler
// stopped: it first completes a sweep interrupted mid-schedule (after a
// cancelled run or a mid-run snapshot), then performs the sweeps still owed
// on the original Iterations budget. On a Reconciler whose schedule already
// completed it is a no-op. Run, by contrast, always performs Iterations
// fresh sweeps; after a restore, Resume is almost always what you want.
func (r *Reconciler) Resume(ctx context.Context) (*Result, error) {
	remaining := r.opts.Iterations - r.sess.Sweeps()
	if remaining < 0 {
		remaining = 0
	}
	_, err := r.sess.RunContext(ctx, remaining)
	return r.sess.Result(), err
}

// Restore reads a full snapshot (written by Snapshot) and reconstructs the
// Reconciler mid-schedule. Options may adjust execution without touching
// matching semantics:
//
//   - WithEngine switches engines — all four resume bit-identically (the
//     frontier's caches are rebuilt when switching into it; restoring as
//     hybrid infers which regime the run is in from the recorded commit
//     history);
//   - WithWorkers and WithIterations re-tune execution;
//   - WithProgress re-installs a progress hook (hooks do not serialize),
//     and WithTracer a span recorder (tracers do not either — continue a
//     persisted trace with RestoreTraceRecorder);
//   - WithSeeds ingests new trusted links, exactly like AddSeeds after
//     restore.
//
// Options that would change what the already-committed links mean —
// threshold, scoring, tie policy, margin, or the bucket schedule — are
// rejected: a snapshot resumes the run it came from, it does not start a
// different one.
func Restore(rd io.Reader, opts ...Option) (*Reconciler, error) {
	g1, g2, st, err := snapshot.Read(rd)
	if err != nil {
		return nil, err
	}
	return restoreReconciler(g1, g2, st, opts)
}

// RestoreState reads a state-only snapshot (written by SnapshotState) and
// attaches it to the graphs it was exported over, with the same option rules
// as Restore. The graphs must be the very ones the snapshot was taken over
// (shape is verified; content fidelity is the caller's store to guarantee —
// cmd/serve persists them next to the state with WriteGraphBinary).
func RestoreState(g1, g2 *Graph, rd io.Reader, opts ...Option) (*Reconciler, error) {
	st, err := snapshot.ReadState(rd)
	if err != nil {
		return nil, err
	}
	return restoreReconciler(g1, g2, st, opts)
}

func restoreReconciler(g1, g2 *Graph, st *core.SessionState, opts []Option) (*Reconciler, error) {
	s := settings{opts: st.Opts}
	for _, opt := range opts {
		opt(&s)
	}
	// Engine, Workers and Iterations are pure execution knobs; everything
	// else is baked into the committed links and cached proposals.
	masked := st.Opts
	masked.Engine, masked.Workers, masked.Iterations = s.opts.Engine, s.opts.Workers, s.opts.Iterations
	if masked != s.opts {
		return nil, fmt.Errorf("reconcile: restore options may change engine, workers and iterations only; matching semantics (threshold, scoring, ties, margin, bucket schedule) come from the snapshot")
	}
	switch s.opts.Engine {
	case core.EngineFrontier:
		// The fixed frontier engine keeps whatever caches the snapshot holds
		// (absent ones are rebuilt from the matching); the hybrid regime flag
		// is meaningful only under EngineHybrid.
		st.HybridFrontier = false
	case core.EngineHybrid:
		// Hybrid must resume in the regime the run had earned, not restart
		// parallel: a snapshot from a fixed engine carries no flag, so derive
		// it from the recorded commit history.
		if st.Opts.Engine != core.EngineHybrid {
			st.HybridFrontier = st.InferHybridRegime()
		}
		if !st.HybridFrontier {
			st.Frontier = nil // parallel regime holds no caches
		}
	default:
		st.Frontier = nil // switching away from the frontier drops its caches
		st.HybridFrontier = false
	}
	st.Opts = s.opts
	sess, err := core.RestoreSession(g1, g2, st)
	if err != nil {
		return nil, err
	}
	sess.SetProgress(s.progress)
	sess.SetTracer(s.tracer)
	if len(s.seeds) > 0 {
		if err := sess.AddSeeds(s.seeds); err != nil {
			return nil, err
		}
	}
	return &Reconciler{sess: sess, opts: s.opts}, nil
}

// Delta checkpointing: a store that checkpoints every sweep pays
// O(links + frontier cache) per checkpoint with SnapshotState — on a large
// converged session, megabytes rewritten to record a kilobyte of change. A
// Checkpointer instead writes a full state snapshot occasionally and cheap
// delta records (the pairs, phase entries and cache edits since the last
// checkpoint) in between; restoring replays (full + deltas) back into the
// identical state, so the resume-equivalence guarantee carries over
// unchanged. cmd/serve's sharded -data-dir store is the reference consumer.

// ErrFullRequired reports that a delta checkpoint cannot be written — there
// is no base yet, or the session changed in a way deltas do not express
// (e.g. an engine switch dropped the frontier caches). Callers write a full
// checkpoint (WriteFull) and continue.
var ErrFullRequired = errors.New("reconcile: delta checkpoint requires a full snapshot first")

// A Checkpointer writes a Reconciler's checkpoint chain: full state
// snapshots interleaved with delta records, each delta relative to the
// checkpoint written immediately before it. The caller owns durability
// ordering — a Checkpointer assumes every successfully returned write
// reached its destination; after a failed or discarded write, start a new
// chain (fresh Checkpointer, or WriteFull) rather than continuing deltas
// over the gap.
//
// A Checkpointer follows the same calling rules as Snapshot: drive it
// between runs or from inside a progress hook, never concurrently with a
// run from another goroutine.
type Checkpointer struct {
	base *core.SessionState
}

// WriteFull writes a state-only snapshot (the SnapshotState format) and
// makes it the base the next delta is diffed against.
func (c *Checkpointer) WriteFull(w io.Writer, r *Reconciler) error {
	st := r.sess.ExportState()
	if err := snapshot.WriteState(w, st); err != nil {
		return err
	}
	c.base = st
	return nil
}

// WriteDelta writes a delta record holding the changes since the previous
// WriteFull/WriteDelta, and advances the base to the current state. With no
// base, or when the state is not delta-expressible from it, it writes
// nothing and returns ErrFullRequired — fall back to WriteFull.
func (c *Checkpointer) WriteDelta(w io.Writer, r *Reconciler) error {
	if c.base == nil {
		return ErrFullRequired
	}
	st := r.sess.ExportState()
	d, err := core.DiffStates(c.base, st)
	if err != nil {
		if errors.Is(err, core.ErrNotDiffable) {
			return fmt.Errorf("%w: %v", ErrFullRequired, err)
		}
		return err
	}
	if err := snapshot.WriteDelta(w, d); err != nil {
		return err
	}
	c.base = st
	return nil
}

// SessionState is a decoded state-only checkpoint held as a value: delta
// records apply to it (Apply), and RestoreSessionState attaches the final
// state to its graphs. It is the replay half of the Checkpointer's chain
// format.
type SessionState struct {
	st *core.SessionState
}

// ReadSessionState reads a state-only snapshot (written by SnapshotState or
// Checkpointer.WriteFull) without yet attaching it to graphs.
func ReadSessionState(r io.Reader) (*SessionState, error) {
	st, err := snapshot.ReadState(r)
	if err != nil {
		return nil, err
	}
	return &SessionState{st: st}, nil
}

// StateDelta is one decoded delta record of a checkpoint chain.
type StateDelta struct {
	d *core.StateDelta
}

// ReadStateDelta reads a delta record written by Checkpointer.WriteDelta.
func ReadStateDelta(r io.Reader) (*StateDelta, error) {
	d, err := snapshot.ReadDelta(r)
	if err != nil {
		return nil, err
	}
	return &StateDelta{d: d}, nil
}

// Apply advances the state by one delta record. Deltas must be applied in
// the order they were written; a record that does not fit the state's
// current position (wrong order, wrong chain, or a gap) returns an error
// and leaves the state unchanged.
func (s *SessionState) Apply(d *StateDelta) error {
	st, err := core.ApplyDelta(s.st, d.d)
	if err != nil {
		return err
	}
	s.st = st
	return nil
}

// RestoreSessionState attaches a replayed state to the graphs it was
// exported over, with the same option rules and shape checks as
// RestoreState. Restoring from (full + deltas) is bit-identical to
// restoring the monolithic snapshot of the same moment — the chain
// resume-equivalence suite pins this on all engines.
func RestoreSessionState(g1, g2 *Graph, s *SessionState, opts ...Option) (*Reconciler, error) {
	// Work on a shallow copy: restoreReconciler canonicalizes options and
	// may drop the frontier snapshot, and the caller's SessionState must
	// stay reusable.
	st := *s.st
	return restoreReconciler(g1, g2, &st, opts)
}

// WriteGraphBinary writes g as a framed, checksummed binary CSR stream — the
// compact, validation-on-load on-disk form for graphs that are read many
// times (snapshot stores, dataset caches). ReadGraphBinary reads it back.
func WriteGraphBinary(w io.Writer, g *Graph) error { return snapshot.WriteGraph(w, g) }

// ReadGraphBinary reads a graph written by WriteGraphBinary — or by
// WriteGraphMapped, sniffed by magic and decoded onto the heap — and
// re-validates its structural invariants; corrupt or truncated input
// returns an error. Reading both formats (as OpenGraphMapped does from the
// other side) means a store can flip its on-disk graph format either way
// without migrating existing files.
func ReadGraphBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	if peek, err := br.Peek(len(graph.MappableMagic)); err == nil && string(peek) == graph.MappableMagic {
		return graph.DecodeMappable(br)
	}
	return snapshot.ReadGraph(br)
}
