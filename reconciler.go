package reconcile

import (
	"context"

	"github.com/sociograph/reconcile/internal/core"
)

// PhaseEvent describes one completed bucket pass of a running reconciliation.
// Progress hooks (WithProgress) receive events synchronously as the run
// advances, so callers can observe phase, bucket and match counts live.
type PhaseEvent = core.PhaseEvent

// PhaseStat records one bucket pass in a Result's Phases slice.
type PhaseStat = core.PhaseStat

// Reconciler is the long-lived form of the matcher: construct it once over
// the two observed networks with New, then drive it — run full sweeps under
// a context, feed newly learned trusted links as they arrive (users keep
// connecting their accounts), observe progress, and snapshot results at any
// point. It supersedes the free functions Reconcile, ReconcileMapReduce and
// NewSession.
//
// A Reconciler is not safe for concurrent use; serialize access externally
// (cmd/serve shows the pattern).
type Reconciler struct {
	sess *core.Session
	opts Options
}

// settings accumulates the functional options before validation.
type settings struct {
	opts     Options
	seeds    []Pair
	progress func(PhaseEvent)
	tracer   *TraceRecorder
}

// Option configures a Reconciler at construction; see the With functions.
type Option func(*settings)

// WithThreshold sets the minimum matching score T (default 2). The paper
// notes T = 2 or 3 already gives very high precision on real networks.
func WithThreshold(t int) Option { return func(s *settings) { s.opts.Threshold = t } }

// WithIterations sets k, the number of full bucket sweeps a Run performs
// (default 2).
func WithIterations(k int) Option { return func(s *settings) { s.opts.Iterations = k } }

// WithEngine selects the execution strategy (default EngineHybrid, which
// runs parallel scans while commits are dense and switches to the frontier
// scheduler once the per-sweep commit rate drops below the measured
// crossover; EngineFrontier is the pure incremental scheduler,
// EngineParallel and EngineSequential re-scan all candidates every pass).
// All engines produce bit-identical matchings.
func WithEngine(e Engine) Option { return func(s *settings) { s.opts.Engine = e } }

// WithScoring selects the candidate ranking function (default
// ScoreWitnessCount, the paper's rule).
func WithScoring(sc Scoring) Option { return func(s *settings) { s.opts.Scoring = sc } }

// WithTieBreak selects how equally-scored best candidates are handled
// (default TieReject).
func WithTieBreak(t TieBreak) Option { return func(s *settings) { s.opts.Ties = t } }

// WithWorkers bounds the engine's goroutines — the parallel engine's
// candidate scan and the frontier engine's re-scoring batches; 0 (the
// default) means GOMAXPROCS.
func WithWorkers(n int) Option { return func(s *settings) { s.opts.Workers = n } }

// WithMargin requires the best candidate's witness count to exceed the
// runner-up's by at least m (default 0 — the paper's rule).
func WithMargin(m int) Option { return func(s *settings) { s.opts.MinMargin = m } }

// WithBucketing enables or disables the degree-bucketing schedule (default
// enabled; the paper measures ~50% more bad matches without it).
func WithBucketing(enabled bool) Option {
	return func(s *settings) { s.opts.DisableBucketing = !enabled }
}

// WithMinBucketExp sets the lowest degree exponent j of the bucket sweep
// (default 1, the paper's "degree >= 2" stop; 0 lets degree-1 nodes match).
func WithMinBucketExp(j int) Option { return func(s *settings) { s.opts.MinBucketExp = j } }

// WithMaxDegree overrides D, the degree seeding the bucket schedule; 0 (the
// default) means max(Δ(G1), Δ(G2)).
func WithMaxDegree(d int) Option { return func(s *settings) { s.opts.MaxDegree = d } }

// WithSeeds supplies initial trusted links. Repeated uses accumulate. More
// seeds can be ingested after construction with Reconciler.AddSeeds.
func WithSeeds(seeds []Pair) Option {
	return func(s *settings) { s.seeds = append(s.seeds, seeds...) }
}

// WithProgress installs a hook called synchronously after every bucket pass.
// The hook may cancel the run's context to stop at the next boundary, and it
// may read or snapshot the Reconciler (Snapshot, SnapshotState, Result, Len
// — it runs at a bucket boundary on the run's own goroutine, which is how
// cmd/serve checkpoints); it must not drive the run itself (Run, AddSeeds)
// or mutate state from inside the hook.
func WithProgress(fn func(PhaseEvent)) Option { return func(s *settings) { s.progress = fn } }

// WithOptions replaces the whole configuration with a legacy Options struct
// — the bridge for code migrating from the deprecated free functions.
// Options given before it are overwritten; options after it refine it.
func WithOptions(o Options) Option { return func(s *settings) { s.opts = o } }

// New constructs a Reconciler over the two observed networks. Without
// options the configuration is DefaultOptions and the seed set is empty
// (supply links via WithSeeds or AddSeeds). The option values are validated
// as a whole; an invalid combination or seed set returns an error.
func New(g1, g2 *Graph, opts ...Option) (*Reconciler, error) {
	s := settings{opts: DefaultOptions()}
	for _, opt := range opts {
		opt(&s)
	}
	sess, err := core.NewSession(g1, g2, s.seeds, s.opts)
	if err != nil {
		return nil, err
	}
	sess.SetProgress(s.progress)
	sess.SetTracer(s.tracer)
	return &Reconciler{sess: sess, opts: s.opts}, nil
}

// Run performs the configured number of full bucket sweeps (WithIterations),
// honoring ctx: cancellation and deadlines are checked at every bucket-phase
// boundary. On expiry it returns the partial Result accumulated so far
// together with ctx.Err(); the partial result is valid (links are never
// retracted), and the Reconciler remains usable — a later Run resumes from
// the current state.
func (r *Reconciler) Run(ctx context.Context) (*Result, error) {
	_, err := r.sess.RunContext(ctx, r.opts.Iterations)
	return r.sess.Result(), err
}

// RunUntilStable sweeps until a full sweep discovers nothing new, maxSweeps
// is reached, or ctx ends (checked at bucket boundaries, like Run).
func (r *Reconciler) RunUntilStable(ctx context.Context, maxSweeps int) (*Result, error) {
	_, err := r.sess.RunUntilStableContext(ctx, maxSweeps)
	return r.sess.Result(), err
}

// AddSeeds ingests newly learned trusted links between runs. A seed whose
// endpoints are already linked to each other is ignored; a seed conflicting
// with an existing link (either endpoint linked elsewhere) is rejected with
// an error and no state change for that seed. Call Run afterwards to expand
// the new links.
func (r *Reconciler) AddSeeds(seeds []Pair) error { return r.sess.AddSeeds(seeds) }

// Result snapshots the current state in Reconcile's output layout: all
// links (seeds first), discoveries, and per-bucket phase statistics.
func (r *Reconciler) Result() *Result { return r.sess.Result() }

// Len returns the current number of links, seeds included.
func (r *Reconciler) Len() int { return r.sess.Len() }

// FrontierActive reports whether an EngineHybrid reconciler has handed off
// to its frontier regime; always false for fixed engines. Readable
// wherever the session is — between buckets on the run goroutine, or any
// time no run is in flight.
func (r *Reconciler) FrontierActive() bool { return r.sess.FrontierActive() }

// Options returns the validated configuration the Reconciler runs with.
func (r *Reconciler) Options() Options { return r.opts }
