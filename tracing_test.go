package reconcile_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"github.com/sociograph/reconcile"
)

// TestTracedRunRecordsSpans covers the facade wiring end to end: a traced
// run emits sweep and seed-ingest spans, and an untraced run costs only the
// nil checks (WithTracer(nil) is the default and must not panic anywhere).
func TestTracedRunRecordsSpans(t *testing.T) {
	r := reconcile.NewRand(17)
	g := reconcile.GeneratePA(r, 400, 6)
	g1, g2 := reconcile.IndependentCopies(r, g, 0.8, 0.8)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(400), 0.2)

	tr := reconcile.NewTraceRecorder(reconcile.TraceConfig{})
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds[:len(seeds)-4]), reconcile.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.RunUntilStable(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	// Incremental ingest of the held-back seeds is the seed-ingest span;
	// conflicts with links the converged run already inferred are fine —
	// the ingest attempt is what gets traced.
	if err := rec.AddSeeds(seeds[len(seeds)-4:]); err == nil {
		if _, err := rec.RunUntilStable(context.Background(), 8); err != nil {
			t.Fatal(err)
		}
	}
	totals := tr.Export().TotalsByKind()
	if totals["sweep"].Count == 0 {
		t.Fatalf("traced run recorded no sweep spans: %v", totals)
	}
	if totals["seed-ingest"].Count == 0 {
		t.Fatalf("traced run recorded no seed-ingest span: %v", totals)
	}

	// The untraced path is the same code with a nil recorder.
	plain, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.RunUntilStable(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
}

// TestRecordedTraceOverhead pins the measured cost of the tracing
// machinery against BENCH_trace.json: the span emission this PR threaded
// through the session hot path must cost BenchmarkReconcileFrontierIncremental
// — run WITHOUT a recorder installed — less than 3% versus the pre-tracing
// commit, and the recorded numbers are the proof. Re-record both numbers on
// the same hardware when re-measuring.
func TestRecordedTraceOverhead(t *testing.T) {
	raw, err := os.ReadFile("BENCH_trace.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		MachineryOverhead struct {
			BaselineNsPerOp int     `json:"baseline_ns_per_op"`
			WithSubsystemNs int     `json:"with_subsystem_ns_per_op"`
			OverheadPct     float64 `json:"overhead_pct"`
			BudgetPct       float64 `json:"budget_pct"`
		} `json:"machinery_overhead"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	m := doc.MachineryOverhead
	if m.BaselineNsPerOp <= 0 || m.WithSubsystemNs <= 0 || m.BudgetPct <= 0 {
		t.Fatal("BENCH_trace.json missing machinery_overhead measurements")
	}
	pct := (float64(m.WithSubsystemNs)/float64(m.BaselineNsPerOp) - 1) * 100
	if pct >= m.BudgetPct {
		t.Fatalf("recorded trace machinery overhead %.2f%% (baseline %d ns, now %d ns) exceeds the %.1f%% budget",
			pct, m.BaselineNsPerOp, m.WithSubsystemNs, m.BudgetPct)
	}
	if diff := pct - m.OverheadPct; diff > 0.01 || diff < -0.01 {
		t.Fatalf("recorded overhead_pct %.2f disagrees with the recorded measurements (%.2f)", m.OverheadPct, pct)
	}
}
